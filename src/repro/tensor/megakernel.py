"""Fused single-sweep attention megakernel with dynamic strategy selection.

The kernel-at-a-time interpreter (:mod:`repro.fusion.interp`) executes
the attention chain SDDMM → masked softmax → SpMM as separate Table-2
kernels, materialising every ``(nnz,)``- or ``(nnz, heads)``-sized edge
intermediate in between. This module fuses the whole chain into **one
CSR row-block sweep** (the DF-GNN strategy): per block of rows it
computes the raw scores, the numerically-stable masked softmax and the
feature aggregation back to back, so edge values only ever live in
cache-sized pooled workspaces — never as full edge arrays.

The backward pass is the *same single sweep* with *recomputation*
(the FlashAttention trade): only the O(n·heads) per-row softmax
statistics (max-shift and shifted denominator) are saved by the
forward; the backward re-derives the per-edge scores and ``dPsi``
once inside each block. Row-side gradients reduce over the block rows
(``reduceat``), and the column-side gradients (``Psi^T dZ``, column
sums, column-endpoint feature gradients) need no transpose sweep at
all — a CSR row block is exactly the CSC representation of its own
transpose, so scipy's C CSC kernel scatters them straight into the
full outputs (``bincount`` for the scalar column sums).

Strategy selection is *dynamic* and per ``(pattern, heads, k)``: the
planner reads the pattern's cached :class:`~repro.tensor.structure.
DegreeStats` and picks uniform fixed-height row blocks for near-regular
degree distributions or edge-budget-balanced blocks (a ``searchsorted``
over ``indptr``) for skewed ones, plus a dense-k cache-blocking chunk;
the resulting :class:`SweepPlan` is memoised on the
:class:`~repro.tensor.structure.PatternStructure`, so warm-path
planning cost is one dict lookup (events ``megaplan.computed`` /
``megaplan.hit``).

Three score kinds cover the paper's Psi formulations, single- or
multi-head (stacked operands):

* ``"dot"``    — :math:`s_{rc} = x^{src}_r \\cdot x^{dst}_c` (VA; no
  softmax in the VA layer).
* ``"add"``    — :math:`s_{rc} = \\mathrm{LeakyReLU}(u_r + v_c)` (GAT).
* ``"cosine"`` — :math:`s_{rc} = \\beta\\,(x_r \\cdot x_c) /
  (n_r n_c)` (AGNN), with the interpreter's safe-division semantics.

Every kind multiplies the raw score by the adjacency's stored edge
value (the Hadamard mask of the global formulation) before the softmax.
Flops are charged once per call to the optional
:class:`~repro.util.counters.FlopCounter`, with counts equal to the
summed unfused kernels (``SDDMM`` + ``softmax`` + ``SpMM`` labels), so
ablation accounting is unchanged by fusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import traced, tracer
from repro.tensor.csr import CSRMatrix
from repro.tensor.structure import PatternStructure
from repro.tensor.workspace import workspace
from repro.util.counters import FlopCounter, event_counter, null_counter

try:  # The per-block SpMM step rides scipy's C csr kernel when present.
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover - scipy is a hard test dep
    _scipy_sparsetools = None

__all__ = [
    "PSI_KINDS",
    "SweepPlan",
    "SweepStats",
    "plan_sweep",
    "attention_forward",
    "attention_backward",
]

PSI_KINDS = ("dot", "add", "cosine")

#: Scalar budget per gather buffer: block_edges · heads · k_chunk stays
#: under this, keeping the live working set L2-resident (2 MiB at
#: float64). With the per-block SpMM/scatter running in C the sweep's
#: fixed per-block cost amortises over larger blocks, so the budget
#: targets L2 rather than L1.
_BLOCK_SCALAR_BUDGET = 1 << 18

#: Blocks never shrink below this many edges on large patterns — the
#: point where per-block Python overhead would dominate the C kernels.
_MIN_BLOCK_EDGES = 2048

#: Dense-k cache blocking: feature widths beyond this are processed in
#: chunks so the gathered slabs stay resident (IO-aware layering).
_MAX_K_CHUNK = 64

#: Degree coefficient-of-variation above which fixed-height row blocks
#: degrade into hub-dominated stragglers and edge balancing pays off.
_CV_BALANCED_THRESHOLD = 0.5


@dataclass(frozen=True)
class SweepPlan:
    """A memoised execution strategy for one ``(pattern, heads, k)``."""

    strategy: str  #: ``"uniform"`` or ``"balanced"``
    block_starts: np.ndarray  #: row boundaries, ``(n_blocks + 1,)``, frozen
    k_chunk: int
    heads: int
    k: int
    max_block_edges: int

    @property
    def n_blocks(self) -> int:
        return int(self.block_starts.shape[0]) - 1


@dataclass
class SweepStats:
    """Saved per-row softmax statistics (O(n·heads), never O(nnz)).

    ``psi_e = exp(s_e - shift[r]) / denom[r]`` reconstructs the softmax
    values inside the backward sweep; ``None`` fields mean the forward
    ran without a softmax (VA).
    """

    shift: np.ndarray | None
    denom: np.ndarray | None


def plan_sweep(
    structure: PatternStructure, heads: int, k: int
) -> SweepPlan:
    """Choose (and memoise) the sweep strategy for this pattern.

    The plan is cached on the structure keyed by ``(heads, k)``; degree
    statistics come from the pattern's cached
    :meth:`~repro.tensor.structure.PatternStructure.degree_stats`.
    """
    heads = max(1, int(heads))
    k = max(1, int(k))
    cached = structure._sweep_plans.get((heads, k))
    if cached is not None:
        event_counter().bump("megaplan.hit")
        return cached
    stats = structure.degree_stats()
    n = structure.shape[0]
    nnz = structure.nnz
    k_chunk = min(k, _MAX_K_CHUNK)
    edge_budget = max(1, _BLOCK_SCALAR_BUDGET // (heads * k_chunk))
    # Structural guarantee: large patterns sweep in at least ~4 blocks,
    # so pooled edge workspaces stay strictly sub-nnz even when the
    # cache budget alone would allow a whole-graph block. Small graphs
    # (everything under _MIN_BLOCK_EDGES) keep their single block.
    edge_budget = min(edge_budget, max(nnz // 4, _MIN_BLOCK_EDGES))
    indptr = structure.indptr
    if n == 0 or nnz == 0:
        strategy = "uniform"
        starts = np.array([0, n], dtype=np.int64) if n else np.array(
            [0], dtype=np.int64
        )
    elif stats.cv > _CV_BALANCED_THRESHOLD:
        # Skewed degrees: row boundaries chosen so every block carries
        # roughly edge_budget entries, regardless of hub placement.
        strategy = "balanced"
        n_blocks = max(1, -(-nnz // edge_budget))
        targets = (np.arange(1, n_blocks, dtype=np.int64) * nnz) // n_blocks
        cuts = np.searchsorted(indptr, targets, side="left")
        cuts = np.unique(cuts[(cuts > 0) & (cuts < n)])
        starts = np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                cuts.astype(np.int64),
                np.full(1, n, dtype=np.int64),
            )
        )
    else:
        # Near-uniform degrees: fixed-height row blocks sized from the
        # mean degree hit the edge budget without a boundary search.
        strategy = "uniform"
        rows_per_block = max(1, int(edge_budget / max(stats.mean, 1.0)))
        starts = np.arange(0, n, rows_per_block, dtype=np.int64)
        starts = np.concatenate((starts, np.full(1, n, dtype=np.int64)))
    starts.flags.writeable = False
    if starts.shape[0] > 1:
        max_edges = int(np.max(np.diff(indptr[starts])))
    else:
        max_edges = 0
    plan = SweepPlan(
        strategy=strategy,
        block_starts=starts,
        k_chunk=k_chunk,
        heads=heads,
        k=k,
        max_block_edges=max_edges,
    )
    structure._sweep_plans[(heads, k)] = plan
    event_counter().bump("megaplan.computed")
    return plan


# ----------------------------------------------------------------------
# Shape normalisation: everything runs internally with an explicit
# heads axis — features (n, H, k), vectors (n, H) — and is squeezed
# back iff the caller passed single-head 2-D/1-D operands.
# ----------------------------------------------------------------------
def _norm_feat(name: str, arr, heads: int) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.ndim == 2:
        if heads != 1:
            raise ValueError(
                f"{name} must be (n, {heads}, k) for {heads}-head operands"
            )
        return arr[:, None, :]
    if arr.ndim == 3 and arr.shape[1] == heads:
        return arr
    raise ValueError(f"{name} has shape {arr.shape}; expected 2-D or "
                     f"(n, {heads}, k)")


def _norm_vec(name: str, arr, heads: int) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.ndim == 1:
        if heads != 1:
            raise ValueError(
                f"{name} must be (n, {heads}) for {heads}-head operands"
            )
        return arr[:, None]
    if arr.ndim == 2 and arr.shape[1] == heads:
        return arr
    raise ValueError(f"{name} has shape {arr.shape}; expected 1-D or "
                     f"(n, {heads})")


def _block_reduceat(ufunc, values, local_indptr, identity, out):
    """``ufunc.reduceat`` per block-local segment, empty rows repaired."""
    lengths = np.diff(local_indptr)
    if np.all(lengths > 0):
        ufunc.reduceat(values, local_indptr[:-1], axis=0, out=out)
        return out
    out[...] = identity
    nonempty = lengths > 0
    if np.any(nonempty):
        out[nonempty] = ufunc.reduceat(
            values, local_indptr[:-1][nonempty], axis=0
        )
    return out


def _gather2(tag: str, arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Pooled (E, H) gather of a (n, H) operand at global indices."""
    buf = workspace(tag, (idx.shape[0], arr.shape[1]), arr.dtype)
    np.take(arr, idx, axis=0, out=buf, mode="clip")
    return buf


def _pair_dot_into(
    s: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    k_chunk: int,
    dtype,
) -> np.ndarray:
    """``s[e] = left[rows[e]] . right[cols[e]]`` with dense-k blocking.

    ``left``/``right`` are (n, H, k); ``s`` is a pre-sized (E, H)
    buffer. The k loop keeps both gathered slabs cache-resident.
    """
    e = rows.shape[0]
    heads = left.shape[1]
    k = left.shape[2]
    s.fill(0.0)
    for k0 in range(0, k, k_chunk):
        k1 = min(k0 + k_chunk, k)
        gl = workspace("mega.sx", (e, heads, k1 - k0), dtype)
        gr = workspace("mega.sy", (e, heads, k1 - k0), dtype)
        np.take(left[:, :, k0:k1], rows, axis=0, out=gl, mode="clip")
        np.take(right[:, :, k0:k1], cols, axis=0, out=gr, mode="clip")
        if k0 == 0 and k1 == k:
            np.einsum("ehk,ehk->eh", gl, gr, out=s)
        else:
            part = workspace("mega.partial", (e, heads), dtype)
            np.einsum("ehk,ehk->eh", gl, gr, out=part)
            s += part
    return s


def _safe_div_into(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """In-place ``num = num / den`` with the interpreter's zero rule:
    entries with a zero denominator become exactly zero."""
    zero = den == 0
    np.divide(num, np.where(zero, 1.0, den), out=num)
    num[zero] = 0.0
    return num


def _head_slices(src: np.ndarray) -> list[np.ndarray] | None:
    """Per-head contiguous ``(n, k)`` views/copies of a ``(n, H, k)``
    operand, for the C SpMM path — or ``None`` when it doesn't apply.

    Single-head slices alias the input; multi-head slices are copied
    once per *call* (never per block), which the per-block C sweeps
    amortise immediately.
    """
    if _scipy_sparsetools is None:
        return None
    out = []
    for h in range(src.shape[1]):
        s = src[:, h, :]
        out.append(s if s.flags.c_contiguous else np.ascontiguousarray(s))
    return out


def _aggregate_block(
    out_block: np.ndarray,
    weights: np.ndarray,
    src: np.ndarray,
    idx: np.ndarray,
    local_indptr: np.ndarray,
    k_chunk: int,
    dtype,
    src_heads: list[np.ndarray] | None = None,
) -> None:
    """``out_block[r] = sum_e weights[e] * src[idx[e]]`` per segment.

    The fused SpMM step. With scipy present (``src_heads`` prepared by
    :func:`_head_slices`) each head runs scipy's C ``csr_matvecs`` over
    the block's index slices — no gathered edge-feature slab at all.
    The fallback gathers ``src`` rows in dense-k chunks, scales by the
    per-edge weights and ``reduceat``-s over the block rows.
    """
    e = idx.shape[0]
    heads = src.shape[1]
    kp = src.shape[2]
    if (
        src_heads is not None
        and idx.dtype == local_indptr.dtype
        and out_block.dtype == dtype
        and weights.dtype == dtype
        and src_heads[0].dtype == dtype
    ):
        rows = out_block.shape[0]
        n_src = src.shape[0]
        for h in range(heads):
            w = weights[:, h]
            if not w.flags.c_contiguous:
                wh = workspace("mega.wh", (e,), dtype)
                wh[...] = w
                w = wh
            out_h = out_block[:, h, :]
            if out_h.flags.c_contiguous:
                _scipy_sparsetools.csr_matvecs(
                    rows, n_src, kp, local_indptr, idx, w,
                    src_heads[h].reshape(-1), out_h.reshape(-1),
                )
            else:
                zh = workspace("mega.zh", (rows, kp), dtype)
                zh.fill(0.0)
                _scipy_sparsetools.csr_matvecs(
                    rows, n_src, kp, local_indptr, idx, w,
                    src_heads[h].reshape(-1), zh.reshape(-1),
                )
                out_h += zh
        return
    for k0 in range(0, kp, k_chunk):
        k1 = min(k0 + k_chunk, kp)
        g = workspace("mega.agg", (e, heads, k1 - k0), dtype)
        np.take(src[:, :, k0:k1], idx, axis=0, out=g, mode="clip")
        g *= weights[:, :, None]
        _block_reduceat(np.add, g, local_indptr, 0.0, out_block[:, :, k0:k1])


# ----------------------------------------------------------------------
# Per-edge masked scores for one block (shared by forward and backward)
# ----------------------------------------------------------------------
def _masked_scores_block(
    s: np.ndarray,
    psi: str,
    a_vals: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    ops: dict,
    k_chunk: int,
    dtype,
    aux: np.ndarray | None = None,
    aux2: np.ndarray | None = None,
) -> np.ndarray:
    """Fill ``s`` with the masked per-edge scores of one block.

    For the backward recomputation the caller passes scratch buffers:
    ``aux`` receives the pre-activation ``c`` for ``"add"`` (LeakyReLU
    mask) or the norm-product denominator for ``"cosine"``; ``aux2``
    receives the cosine values (pre-``beta``, pre-mask).
    """
    if psi == "add":
        gu = _gather2("mega.su", ops["u"], rows)
        gv = _gather2("mega.sv", ops["v"], cols)
        np.add(gu, gv, out=s)
        if aux is not None:
            aux[...] = s
        np.multiply(s, ops["slope"], out=s, where=s < 0)
        s *= a_vals[:, None]
        return s
    _pair_dot_into(s, ops["x_src"], ops["x_dst"], rows, cols, k_chunk, dtype)
    if psi == "cosine":
        norms = ops["norms"]
        den = (
            aux
            if aux is not None
            else workspace("mega.den", s.shape, dtype)
        )
        np.take(norms, rows, axis=0, out=den, mode="clip")
        nc = _gather2("mega.nc", norms, cols)
        np.multiply(den, nc, out=den)
        _safe_div_into(s, den)
        if aux2 is not None:
            aux2[...] = s
        s *= ops["beta"]
    s *= a_vals[:, None]
    return s


def _psi_from_stats(
    s: np.ndarray,
    shift: np.ndarray,
    denom: np.ndarray,
    row_idx: np.ndarray,
) -> np.ndarray:
    """In-place softmax reconstruction from saved per-row statistics."""
    rep = workspace("mega.rep", s.shape, s.dtype)
    np.take(shift, row_idx, axis=0, out=rep, mode="clip")
    np.subtract(s, rep, out=s)
    np.exp(s, out=s)
    np.take(denom, row_idx, axis=0, out=rep, mode="clip")
    np.divide(s, np.where(rep == 0, 1.0, rep), out=s)
    return s


def _sddmm_flops(psi: str, nnz: int, heads: int, k: int) -> int:
    """Score flops, equal to the matching unfused ``sddmm_*`` count."""
    if psi == "add":
        return nnz * heads
    if psi == "dot":
        return 2 * nnz * heads * k
    return 2 * nnz * heads * k + 2 * nnz * heads  # cosine: dot + divide


# ----------------------------------------------------------------------
# Forward: one row-block sweep
# ----------------------------------------------------------------------
@traced("megakernel.forward")
def attention_forward(
    a: CSRMatrix,
    psi: str,
    y: np.ndarray,
    *,
    x_src: np.ndarray | None = None,
    x_dst: np.ndarray | None = None,
    u: np.ndarray | None = None,
    v: np.ndarray | None = None,
    norms: np.ndarray | None = None,
    slope: float = 0.2,
    beta: float = 1.0,
    softmax: bool | None = None,
    plan: SweepPlan | None = None,
    counter: FlopCounter = null_counter(),
) -> tuple[np.ndarray, SweepStats | None]:
    """Fused SDDMM → masked softmax → SpMM in one row-block sweep.

    Parameters mirror the recognised IR chain: ``a`` is the adjacency
    (its stored values are the Hadamard mask), ``y`` the aggregation
    operand (``H W``), and the score operands depend on ``psi`` — see
    the module docstring. ``softmax=None`` defaults to the layer
    formulations (softmax for ``add``/``cosine``, none for ``dot``).

    Returns ``(z, stats)`` where ``z = Psi @ y`` and ``stats`` holds the
    per-row softmax statistics the backward sweep needs (``None``
    without a softmax). No ``(nnz,)``-sized intermediate is written:
    scores and softmax values live in block-bounded pooled workspaces.
    """
    if psi not in PSI_KINDS:
        raise ValueError(f"unknown psi kind {psi!r}; expected {PSI_KINDS}")
    if a.data.ndim != 1:
        raise ValueError("megakernel adjacency values must be scalar (1-D)")
    if softmax is None:
        softmax = psi != "dot"
    y_arr = np.asarray(y)
    flat = y_arr.ndim == 2
    heads = 1 if flat else y_arr.shape[1]
    y3 = _norm_feat("y", y_arr, heads)
    ops = _normalise_ops(
        psi, heads, x_src=x_src, x_dst=x_dst, u=u, v=v, norms=norms,
        slope=slope, beta=beta,
    )
    k_score = ops["x_src"].shape[2] if psi in ("dot", "cosine") else 1
    n = a.shape[0]
    kp = y3.shape[2]
    dtype = np.result_type(a.data, y3, *(
        ops[key] for key in ("x_src", "u", "norms") if ops.get(key) is not None
    ))
    if plan is None:
        plan = plan_sweep(a.structure, heads, max(k_score, kp))
    tracer().annotate(
        psi=psi, heads=heads, strategy=plan.strategy, blocks=plan.n_blocks
    )
    nnz = a.nnz
    counter.add(_sddmm_flops(psi, nnz, heads, k_score), "SDDMM")
    if softmax:
        counter.add(5 * nnz * heads, "softmax")
    counter.add(2 * nnz * heads * kp, "SpMM")

    z = np.zeros((n, heads, kp), dtype=dtype)
    stats = None
    if softmax:
        stats = SweepStats(
            shift=np.zeros((n, heads), dtype=dtype),
            denom=np.zeros((n, heads), dtype=dtype),
        )
    indptr = a.indptr
    rows_all = a.expand_rows()
    starts = plan.block_starts
    y_heads = _head_slices(y3)
    event_counter().bump("megakernel.forward")
    event_counter().bump("megakernel.block", plan.n_blocks)
    for b in range(plan.n_blocks):
        r0, r1 = int(starts[b]), int(starts[b + 1])
        e0, e1 = int(indptr[r0]), int(indptr[r1])
        if e0 == e1:
            continue
        rows_b = rows_all[e0:e1]
        cols_b = a.indices[e0:e1]
        lp = indptr[r0 : r1 + 1] - e0
        s = workspace("mega.scores", (e1 - e0, heads), dtype)
        _masked_scores_block(
            s, psi, a.data[e0:e1], rows_b, cols_b, ops, plan.k_chunk, dtype
        )
        if softmax:
            local = workspace("mega.lrows", rows_b.shape, np.int64)
            np.subtract(rows_b, r0, out=local)
            shift_b = stats.shift[r0:r1]
            _block_reduceat(np.maximum, s, lp, 0.0, shift_b)
            rep = workspace("mega.rep", s.shape, dtype)
            np.take(shift_b, local, axis=0, out=rep, mode="clip")
            np.subtract(s, rep, out=s)
            np.exp(s, out=s)
            denom_b = stats.denom[r0:r1]
            _block_reduceat(np.add, s, lp, 0.0, denom_b)
            np.take(denom_b, local, axis=0, out=rep, mode="clip")
            np.divide(s, np.where(rep == 0, 1.0, rep), out=s)
        _aggregate_block(
            z[r0:r1], s, y3, cols_b, lp, plan.k_chunk, dtype,
            src_heads=y_heads,
        )
    return (z[:, 0, :] if flat else z), stats


def _normalise_ops(psi, heads, *, x_src, x_dst, u, v, norms, slope, beta):
    ops: dict = {"slope": float(slope), "beta": float(beta),
                 "x_src": None, "u": None, "norms": None}
    if psi == "add":
        if u is None or v is None:
            raise ValueError("psi 'add' needs u and v operands")
        ops["u"] = _norm_vec("u", u, heads)
        ops["v"] = _norm_vec("v", v, heads)
    else:
        if x_src is None:
            raise ValueError(f"psi {psi!r} needs x_src")
        ops["x_src"] = _norm_feat("x_src", x_src, heads)
        ops["x_dst"] = _norm_feat(
            "x_dst", x_dst if x_dst is not None else x_src, heads
        )
        if psi == "cosine":
            if norms is None:
                raise ValueError("psi 'cosine' needs precomputed norms")
            ops["norms"] = _norm_vec("norms", norms, heads)
    return ops


# ----------------------------------------------------------------------
# Backward: one row-block sweep (column-side gradients via C scatter)
# ----------------------------------------------------------------------
@traced("megakernel.backward")
def attention_backward(
    a: CSRMatrix,
    psi: str,
    y: np.ndarray,
    dz: np.ndarray,
    *,
    stats: SweepStats | None = None,
    x_src: np.ndarray | None = None,
    x_dst: np.ndarray | None = None,
    u: np.ndarray | None = None,
    v: np.ndarray | None = None,
    norms: np.ndarray | None = None,
    slope: float = 0.2,
    beta: float = 1.0,
    softmax: bool | None = None,
    plan: SweepPlan | None = None,
    counter: FlopCounter = null_counter(),
) -> dict[str, np.ndarray]:
    """Fused backward of :func:`attention_forward`, same sweep shape.

    Per-edge quantities (scores, softmax values, ``dPsi``) are
    *recomputed* once per block from the operands plus the saved
    ``stats``; nothing edge-sized is read from memory or written back.
    One sweep over the pattern produces everything: row-side gradients
    reduce over the block rows, column-side ones scatter through the
    block's own CSR arrays reinterpreted as its transpose's CSC form
    (see :func:`_scatter_add_block`).

    Returns a dict whose keys depend on ``psi``:

    * always: ``"dY"`` (:math:`\\Psi^T dZ`, the aggregation-operand
      gradient);
    * ``"dot"``/``"cosine"``: ``"dRow"``/``"dCol"`` — the gradients
      w.r.t. ``x_src``/``x_dst`` through the sampled Gram product;
    * ``"cosine"``: plus ``"dNormRow"``/``"dNormCol"`` — the gradients
      w.r.t. the row-norm vector's two endpoints;
    * ``"add"``: ``"dU"``/``"dV"`` — the logit-vector gradients.
    """
    if psi not in PSI_KINDS:
        raise ValueError(f"unknown psi kind {psi!r}; expected {PSI_KINDS}")
    if softmax is None:
        softmax = psi != "dot"
    if softmax and (stats is None or stats.shift is None):
        raise ValueError("softmax backward needs the forward SweepStats")
    y_arr = np.asarray(y)
    dz_arr = np.asarray(dz)
    flat = y_arr.ndim == 2
    heads = 1 if flat else y_arr.shape[1]
    y3 = _norm_feat("y", y_arr, heads)
    dz3 = _norm_feat("dz", dz_arr, heads)
    ops = _normalise_ops(
        psi, heads, x_src=x_src, x_dst=x_dst, u=u, v=v, norms=norms,
        slope=slope, beta=beta,
    )
    k_score = ops["x_src"].shape[2] if psi in ("dot", "cosine") else 1
    n, m = a.shape
    kp = y3.shape[2]
    nnz = a.nnz
    dtype = np.result_type(a.data, y3, dz3)
    counter.add(2 * nnz * heads * kp, "SDDMM")  # dPsi sampled product
    if softmax:
        counter.add(4 * nnz * heads, "softmax_bwd")
    counter.add(2 * nnz * heads * kp, "SpMM")  # dY
    if psi in ("dot", "cosine"):
        counter.add(2 * (2 * nnz * heads * k_score), "SpMM")  # dRow, dCol
    if psi == "cosine":
        counter.add(2 * (2 * nnz * heads), "SpMM")  # norm-endpoint SpMVs

    if plan is None:
        plan = plan_sweep(a.structure, heads, max(k_score, kp))
    tracer().annotate(
        psi=psi, heads=heads, strategy=plan.strategy, blocks=plan.n_blocks
    )
    out: dict[str, np.ndarray] = {}
    if psi == "add":
        out["dU"] = np.zeros((n, heads), dtype=dtype)
        out["dV"] = np.zeros((m, heads), dtype=dtype)
    else:
        out["dRow"] = np.zeros((n, heads, k_score), dtype=dtype)
    if psi == "cosine":
        out["dNormRow"] = np.zeros((n, heads), dtype=dtype)
        out["dNormCol"] = np.zeros((m, heads), dtype=dtype)
    # Column-side accumulators live head-major so each head's (m, k)
    # plane is contiguous for the C scatter kernel; moved back to
    # (m, heads, k) once at the end.
    dy_hm = np.zeros((heads, m, kp), dtype=dtype)
    dcol_hm = (
        np.zeros((heads, m, k_score), dtype=dtype)
        if psi in ("dot", "cosine")
        else None
    )

    # Contiguous per-head operand slices for the C SpMM path, prepared
    # once per call (see _head_slices).
    dz_heads = _head_slices(dz3)
    xsrc_heads = xdst_heads = None
    if psi in ("dot", "cosine"):
        xsrc_heads = _head_slices(ops["x_src"])
        xdst_heads = _head_slices(ops["x_dst"])

    event_counter().bump("megakernel.backward")

    # ---- one sweep over the pattern -----------------------------------
    # Row-side gradients reduce over block rows as in the forward; the
    # column-side ones need no transpose sweep at all: a CSR row block
    # *is* its own transpose's CSC representation, so a C CSC kernel
    # scatters ``Psi^T dZ`` / column feature gradients straight into the
    # full output (``_scatter_add_block``), and the scalar column sums
    # go through ``bincount``.
    indptr = a.indptr
    rows_all = a.expand_rows()
    starts = plan.block_starts
    for b in range(plan.n_blocks):
        r0, r1 = int(starts[b]), int(starts[b + 1])
        e0, e1 = int(indptr[r0]), int(indptr[r1])
        if e0 == e1:
            continue
        rows_b = rows_all[e0:e1]
        cols_b = a.indices[e0:e1]
        lp = indptr[r0 : r1 + 1] - e0
        ds, dden, psi_vals = _edge_grad_block(
            psi, a.data[e0:e1], rows_b, cols_b, ops, plan.k_chunk, dtype,
            y3, dz3, stats, softmax, r0=r0, local_indptr=lp,
        )
        _scatter_add_block(
            dy_hm, psi_vals, rows_b, cols_b, lp, dz3, dz_heads, r0, r1,
            plan.k_chunk, dtype,
        )
        if psi == "add":
            for h in range(heads):
                out["dV"][:, h] += np.bincount(
                    cols_b, weights=ds[:, h], minlength=m
                )
            _block_reduceat(np.add, ds, lp, 0.0, out["dU"][r0:r1])
            continue
        _scatter_add_block(
            dcol_hm, ds, rows_b, cols_b, lp, ops["x_src"], xsrc_heads,
            r0, r1, plan.k_chunk, dtype,
        )
        if psi == "cosine":
            # dNormCol first: the row-side reduction consumes dden.
            gr = _gather2("mega.nr", ops["norms"], rows_b)
            np.multiply(gr, dden, out=gr)
            for h in range(heads):
                out["dNormCol"][:, h] += np.bincount(
                    cols_b, weights=gr[:, h], minlength=m
                )
        _aggregate_block(
            out["dRow"][r0:r1], ds, ops["x_dst"], cols_b, lp,
            plan.k_chunk, dtype, src_heads=xdst_heads,
        )
        if psi == "cosine":
            gn = _gather2("mega.nc", ops["norms"], cols_b)
            np.multiply(dden, gn, out=dden)
            _block_reduceat(np.add, dden, lp, 0.0, out["dNormRow"][r0:r1])

    if flat:
        out = {
            key: (val[:, 0, :] if val.ndim == 3 else val[:, 0])
            for key, val in out.items()
        }
        out["dY"] = dy_hm[0]
        if dcol_hm is not None:
            out["dCol"] = dcol_hm[0]
    else:
        out["dY"] = np.ascontiguousarray(np.moveaxis(dy_hm, 0, 1))
        if dcol_hm is not None:
            out["dCol"] = np.ascontiguousarray(np.moveaxis(dcol_hm, 0, 1))
    return out


def _scatter_add_block(
    out_hm: np.ndarray,
    weights: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    local_indptr: np.ndarray,
    src3: np.ndarray,
    src_heads: list[np.ndarray] | None,
    r0: int,
    r1: int,
    k_chunk: int,
    dtype,
) -> None:
    """``out_hm[h, c] += sum_e weights[e, h] * src[row(e), h]`` — one
    row block's *column-side* aggregation, without a transpose sweep.

    The block's CSR arrays ``(local_indptr, cols, weights)`` are exactly
    the CSC representation of the block's transpose, so with scipy
    present each head is one C ``csc_matvecs`` scatter straight into the
    full head-major output plane. The fallback gathers the source rows
    in dense-k chunks and ``bincount``-s each feature column.
    """
    e = cols.shape[0]
    heads, m, kp = out_hm.shape
    if (
        src_heads is not None
        and cols.dtype == local_indptr.dtype
        and out_hm.dtype == dtype
        and weights.dtype == dtype
        and src_heads[0].dtype == dtype
    ):
        for h in range(heads):
            w = weights[:, h]
            if not w.flags.c_contiguous:
                wh = workspace("mega.wh", (e,), dtype)
                wh[...] = w
                w = wh
            _scipy_sparsetools.csc_matvecs(
                m, r1 - r0, kp, local_indptr, cols, w,
                src_heads[h][r0:r1].reshape(-1), out_hm[h].reshape(-1),
            )
        return
    for h in range(heads):
        for k0 in range(0, kp, k_chunk):
            k1 = min(k0 + k_chunk, kp)
            g = workspace("mega.agg", (e, k1 - k0), dtype)
            np.take(src3[:, h, k0:k1], rows, axis=0, out=g, mode="clip")
            g *= weights[:, h : h + 1]
            for kk in range(k0, k1):
                out_hm[h, :, kk] += np.bincount(
                    cols, weights=g[:, kk - k0], minlength=m
                )


def _edge_grad_block(
    psi: str,
    a_vals: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    ops: dict,
    k_chunk: int,
    dtype,
    y3: np.ndarray,
    dz3: np.ndarray,
    stats: SweepStats | None,
    softmax: bool,
    r0: int,
    local_indptr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Recompute one block's per-edge score gradient ``dS``.

    Returns ``(dS, dDenom, psi_vals)``: ``dS`` is the gradient w.r.t.
    the raw score operand (Gram value for ``dot``/``cosine``,
    pre-activation logit for ``add``), ``dDenom`` the cosine
    norm-product gradient (else ``None``), and ``psi_vals`` the
    reconstructed per-edge softmax values (masked scores without a
    softmax) — the weights of the caller's ``dY`` scatter. ``psi_vals``
    aliases the block score workspace: consume it before the next block.
    """
    e = rows.shape[0]
    heads = y3.shape[1]
    s = workspace("mega.scores", (e, heads), dtype)
    aux = workspace("mega.aux", (e, heads), dtype)
    aux2 = (
        workspace("mega.aux2", (e, heads), dtype)
        if psi == "cosine"
        else None
    )
    _masked_scores_block(
        s, psi, a_vals, rows, cols, ops, k_chunk, dtype, aux=aux, aux2=aux2
    )
    if softmax:
        _psi_from_stats(s, stats.shift, stats.denom, rows)
    # dPsi_e = <dZ[r], Y[c]> — the sampled dense-dense product.
    d = workspace("mega.dpsi", (e, heads), dtype)
    _pair_dot_into(d, dz3, y3, rows, cols, k_chunk, dtype)
    if softmax:
        # Softmax VJP: dMasked = psi * (dPsi - inner_row).
        local = workspace("mega.lrows", rows.shape, np.int64)
        np.subtract(rows, r0, out=local)
        t = workspace("mega.inner", (e, heads), dtype)
        np.multiply(s, d, out=t)
        nrows = local_indptr.shape[0] - 1
        inner_rows = workspace("mega.innerrow", (nrows, heads), dtype)
        _block_reduceat(np.add, t, local_indptr, 0.0, inner_rows)
        rep = workspace("mega.rep", (e, heads), dtype)
        np.take(inner_rows, local, axis=0, out=rep, mode="clip")
        np.subtract(d, rep, out=d)
        np.multiply(d, s, out=d)
    dden = None
    if psi == "add":
        # dC = dMasked ⊙ A ⊙ LeakyReLU'(c); aux holds the pre-activation.
        d *= a_vals[:, None]
        np.multiply(d, ops["slope"], out=d, where=aux < 0)
    elif psi == "dot":
        d *= a_vals[:, None]
    else:  # cosine: aux = norm product, aux2 = cosine values
        d *= a_vals[:, None]
        d *= ops["beta"]
        _safe_div_into(d, aux)  # dGram
        dden = workspace("mega.dden", (e, heads), dtype)
        np.multiply(d, aux2, out=dden)
        np.negative(dden, out=dden)
    return d, dden, s
