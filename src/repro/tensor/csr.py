"""Compressed sparse row (CSR) matrices.

CSR is the compute format of the library: the adjacency matrix
:math:`\\mathcal{A}` and every attention-score matrix
:math:`\\Psi(\\mathcal{A}, H)` (which shares A's sparsity pattern) are
stored in CSR. The format is three NumPy arrays — ``indptr``,
``indices``, ``data`` — exactly as in scipy, but implemented from
scratch so that semiring products and fused attention kernels can work
directly on the raw arrays.

Every matrix carries a :class:`~repro.tensor.structure.PatternStructure`
interned on the identity of its ``(indptr, indices)`` arrays: matrices
derived via :meth:`CSRMatrix.with_data` / :meth:`CSRMatrix.astype` /
:meth:`CSRMatrix.scale_rows` share the structure object, so
``expand_rows``, ``transpose_permutation``, the transposed pattern and
the scipy view are computed at most once per sparsity pattern per
process. The index arrays are frozen (read-only) on construction —
``data`` remains writable.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.structure import (
    PatternStructure,
    intern_structure,
    lookup_structure,
)

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n_rows + 1``; row ``i`` owns entries
        ``indptr[i]:indptr[i+1]``. Frozen (made read-only) on
        construction.
    indices:
        Column index of each stored entry, row-major sorted. Frozen on
        construction.
    data:
        Value of each stored entry (stays writable). Either a scalar
        per entry — shape ``(nnz,)`` — or a stacked per-head value
        vector — shape ``(nnz, heads)`` — for the batched multi-head
        kernels; all structural operations act on the leading (entry)
        axis only.
    shape:
        ``(n_rows, n_cols)``.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_structure")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data)
        shape = (int(shape[0]), int(shape[1]))
        if indices.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        if data.ndim not in (1, 2) or data.shape[0] != indices.shape[0]:
            raise ValueError(
                "data must be (nnz,) or (nnz, heads) matching indices length"
            )
        # An interned structure means these exact arrays already passed
        # validation for this shape (and cannot have been mutated since:
        # they are frozen), so the O(n + nnz) checks are skipped.
        structure = lookup_structure(indptr, indices, shape)
        if structure is None:
            if indptr.ndim != 1 or indptr.shape[0] != shape[0] + 1:
                raise ValueError("indptr must have length n_rows + 1")
            if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
                raise ValueError("indptr endpoints inconsistent with indices")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if indices.size and (
                indices.min() < 0 or indices.max() >= shape[1]
            ):
                raise ValueError("column index out of range")
            structure = intern_structure(indptr, indices, shape)
        self.indptr = structure.indptr
        self.indices = structure.indices
        self.data = data
        self.shape = shape
        self._structure = structure

    @classmethod
    def _from_structure(
        cls, structure: PatternStructure, data: np.ndarray
    ) -> "CSRMatrix":
        """Construct over an already-interned structure (no validation)."""
        data = np.asarray(data)
        if data.ndim not in (1, 2) or data.shape[0] != structure.indices.shape[0]:
            raise ValueError(
                f"data shape {data.shape} does not match pattern nnz "
                f"{structure.indices.shape}"
            )
        obj = cls.__new__(cls)
        obj.indptr = structure.indptr
        obj.indices = structure.indices
        obj.data = data
        obj.shape = structure.shape
        obj._structure = structure
        return obj

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def structure(self) -> PatternStructure:
        """The interned structure cache shared by all same-pattern matrices."""
        return self._structure

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"

    def row_lengths(self) -> np.ndarray:
        """Stored entries per row (the out-degree for adjacency input).

        Cached per pattern; the returned array is read-only.
        """
        return self._structure.row_lengths()

    def expand_rows(self) -> np.ndarray:
        """Row index of every stored entry (COO row vector).

        The workhorse of every edge-wise (SDDMM-like) kernel. Cached
        per pattern; the returned array is read-only.
        """
        return self._structure.expand_rows()

    def degree_stats(self):
        """Row-length summary statistics (cached per pattern).

        See :meth:`repro.tensor.structure.PatternStructure.degree_stats`.
        """
        return self._structure.degree_stats()

    # ------------------------------------------------------------------
    # Same-pattern value algebra
    # ------------------------------------------------------------------
    def with_data(self, data: np.ndarray) -> "CSRMatrix":
        """A new matrix sharing this pattern with different values.

        Attention matrices :math:`\\Psi` always share the adjacency
        pattern (Section 6.2: "the output almost always has the same
        sparsity pattern as the adjacency matrix"), so this is the main
        constructor on the attention path. ``indptr``/``indices`` — and
        the structure cache — are shared, not copied.
        """
        return CSRMatrix._from_structure(self._structure, data)

    def scale_rows(self, row_factors: np.ndarray) -> "CSRMatrix":
        """Multiply each row by a scalar: ``diag(f) @ X`` (same pattern)."""
        row_factors = np.asarray(row_factors)
        if row_factors.shape != (self.shape[0],):
            raise ValueError("row_factors must have length n_rows")
        factors = row_factors[self.expand_rows()]
        if self.data.ndim == 2:
            factors = factors[:, None]
        return self.with_data(self.data * factors)

    def scale_cols(self, col_factors: np.ndarray) -> "CSRMatrix":
        """Multiply each column by a scalar: ``X @ diag(f)`` (same pattern)."""
        col_factors = np.asarray(col_factors)
        if col_factors.shape != (self.shape[1],):
            raise ValueError("col_factors must have length n_cols")
        factors = col_factors[self.indices]
        if self.data.ndim == 2:
            factors = factors[:, None]
        return self.with_data(self.data * factors)

    def row_sum(self) -> np.ndarray:
        """Per-row sum of stored values — ``sum(X) = X @ 1`` of Table 2."""
        from repro.tensor.segment import segment_sum

        return segment_sum(self.data, self.indptr)

    def col_sum(self) -> np.ndarray:
        """Per-column sum of stored values — ``sum^T(X) = 1^T X``.

        Uses ``np.bincount`` (a single C pass) rather than the much
        slower ``np.add.at`` scatter; accumulation happens in float64
        and the result is cast back to the value dtype.
        """
        from repro.tensor.segment import bincount_sum

        return bincount_sum(self.indices, self.data, self.shape[1])

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix.

        The transposed pattern and the entry permutation are cached per
        structure (O(nnz) counting sort on first use, then free), so
        repeated backward-pass transposes only pay the O(nnz) value
        permutation.
        """
        structure_t = self._structure.transpose()
        perm = self._structure.transpose_permutation()
        return CSRMatrix._from_structure(structure_t, self.data[perm])

    def transpose_permutation(self) -> np.ndarray:
        """Permutation ``p`` such that entry ``i`` of ``X^T`` (row-major
        order of the transpose) is entry ``p[i]`` of ``X``.

        Backward passes repeatedly need values of :math:`\\Psi^T`; with
        this permutation they are a single fancy-index away instead of a
        full re-transposition. Cached per pattern (read-only).
        """
        return self._structure.transpose_permutation()

    def extract_block(
        self, r0: int, r1: int, c0: int, c1: int
    ) -> "CSRMatrix":
        """Extract the dense-index block ``[r0:r1, c0:c1]`` as CSR.

        Used by the 2D partitioner: each rank of the ``Px × Py`` grid
        stores one such block of :math:`\\mathcal{A}` (Section 6.3).
        """
        if not (0 <= r0 <= r1 <= self.shape[0]):
            raise ValueError("row range out of bounds")
        if not (0 <= c0 <= c1 <= self.shape[1]):
            raise ValueError("column range out of bounds")
        from repro.tensor.segment import segment_sum

        start, stop = self.indptr[r0], self.indptr[r1]
        cols = self.indices[start:stop]
        mask = (cols >= c0) & (cols < c1)
        # Per-row counts of surviving entries, via segment sums of the mask.
        seg = self.indptr[r0 : r1 + 1] - start
        counts = segment_sum(mask.astype(np.int64), seg)
        local_indptr = np.zeros(r1 - r0 + 1, dtype=np.int64)
        local_indptr[1:] = np.cumsum(counts)
        return CSRMatrix(
            local_indptr,
            cols[mask] - c0,
            self.data[start:stop][mask],
            (r1 - r0, c1 - c0),
        )

    def extract_submatrix(self, vertices: np.ndarray) -> "CSRMatrix":
        """Induced square submatrix on a sorted vertex subset.

        Rows and columns are restricted to ``vertices`` (strictly
        increasing global ids) and relabelled to ``[0, len(vertices))``.
        Used by the mini-batch baseline to build sampled training
        blocks.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and np.any(np.diff(vertices) <= 0):
            raise ValueError("vertices must be strictly increasing")
        nv = vertices.shape[0]
        # Gather the selected rows' entries: a vectorised ragged-range
        # construction — entry j of segment i maps to starts[i] + j,
        # built as repeat(starts - exclusive_cumsum(lengths)) + arange.
        starts = self.indptr[vertices]
        stops = self.indptr[vertices + 1] if nv else starts
        lengths = stops - starts
        total = int(lengths.sum()) if nv else 0
        if total:
            offsets = np.zeros(nv, dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            gather = np.repeat(starts - offsets, lengths)
            gather += np.arange(total, dtype=np.int64)
        else:
            gather = np.empty(0, dtype=np.int64)
        cols = self.indices[gather]
        data = self.data[gather]
        row_of_entry = np.repeat(np.arange(nv, dtype=np.int64), lengths)
        # Keep entries whose column is in the subset; remap both axes.
        pos = np.searchsorted(vertices, cols)
        pos_clipped = np.minimum(pos, max(nv - 1, 0))
        keep = nv > 0 and vertices[pos_clipped] == cols
        keep = np.asarray(keep, dtype=bool) & (pos < nv)
        new_rows = row_of_entry[keep]
        new_cols = pos_clipped[keep]
        indptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_rows, minlength=nv), out=indptr[1:])
        return CSRMatrix(indptr, new_cols, data[keep], (nv, nv))

    # ------------------------------------------------------------------
    # Elementwise combination (general pattern)
    # ------------------------------------------------------------------
    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Entry-wise sum with another CSR matrix (patterns may differ)."""
        if self.shape != other.shape:
            raise ValueError("shape mismatch in CSR add")
        from repro.tensor.coo import COOMatrix

        rows = np.concatenate([self.expand_rows(), other.expand_rows()])
        cols = np.concatenate([self.indices, other.indices])
        data = np.concatenate(
            [self.data, other.data.astype(self.data.dtype, copy=False)]
        )
        return COOMatrix(rows, cols, data, shape=self.shape).to_csr()

    def hadamard_same_pattern(self, other: "CSRMatrix") -> "CSRMatrix":
        """Entry-wise product assuming identical patterns (checked cheaply)."""
        if self.shape != other.shape or self.nnz != other.nnz:
            raise ValueError("pattern mismatch in hadamard_same_pattern")
        return self.with_data(self.data * other.data)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        from repro.tensor.coo import COOMatrix

        out = COOMatrix(
            self.expand_rows().copy(),
            self.indices.copy(),
            self.data.copy(),
            shape=self.shape,
            dedup=False,
        )
        out._canonical = True
        return out

    def to_dense(self) -> np.ndarray:
        """Materialise as dense. Reference/testing use only.

        Head-batched matrices yield ``(n, m, heads)``.
        """
        out = np.zeros(self.shape + self.data.shape[1:], dtype=self.dtype)
        out[self.expand_rows(), self.indices] = self.data
        return out

    def to_scipy(self):
        """View as ``scipy.sparse.csr_matrix`` (shares buffers).

        The scipy wrapper (including its int32 index downcast) is built
        once per pattern and shallow-cloned per call. Only scalar edge
        values have a scipy counterpart; head-batched matrices must go
        through the head-interleaved view used by the batched SpMM.
        """
        if self.data.ndim != 1:
            raise ValueError(
                "to_scipy requires scalar edge values; head-batched "
                "matrices use structure.head_scipy_view"
            )
        return self._structure.scipy_view(self.data)

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy sparse matrix."""
        mat = mat.tocsr()
        if not mat.has_sorted_indices:
            mat = mat.copy()
            mat.sort_indices()
        return cls(
            mat.indptr.astype(np.int64),
            mat.indices.astype(np.int64),
            np.array(mat.data),
            mat.shape,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        from repro.tensor.coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    def astype(self, dtype) -> "CSRMatrix":
        """Pattern-sharing cast of the values."""
        return self.with_data(self.data.astype(dtype))

    def copy(self) -> "CSRMatrix":
        """An independent copy: fresh data *and* fresh index arrays.

        The copy deliberately does not share this matrix's structure
        cache (its index arrays are new objects), which also makes it
        the way to obtain a cache-cold matrix in tests.
        """
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )
