"""Compute kernels of Table 2: SpMM, SDDMM, MM, SpMMM, MSpMM.

These kernels are the complete compute vocabulary of the paper's global
formulations — every forward and backward pass of VA, AGNN and GAT
decomposes into them (Figure 1). Design points:

* **Semiring-generic SpMM** (Section 4.3): the neighbourhood
  aggregation :math:`\\mathcal{A} \\oplus H` runs over the real,
  tropical min/max, or average semiring.
* **SDDMM family**: sampled dense-dense products computing per-edge
  attention logits without materialising the virtual :math:`n \\times n`
  score matrix (Section 6.1). Edge chunks bound peak memory — the
  "computed in small parts using a dynamic schedule" strategy.
* **Backend selection**: the real-semiring SpMM can delegate to
  ``scipy.sparse`` (BLAS-backed), mirroring the paper's delegation to
  cuSPARSE; the pure-NumPy reference path is the correctness oracle
  and the only path for exotic semirings.
* **Flop accounting**: every kernel reports textbook flop counts to an
  optional :class:`~repro.util.counters.FlopCounter`, feeding the
  simulated-cluster cost model.
"""

from __future__ import annotations

import os

import numpy as np

from repro.obs.tracer import traced as _traced
from repro.tensor.csr import CSRMatrix
from repro.tensor.segment import (
    expand_segments,
    segment_softmax,
    segment_sum,
)
from repro.tensor.semiring import AVERAGE, REAL, Semiring
from repro.tensor.workspace import workspace
from repro.util.counters import FlopCounter, null_counter

__all__ = [
    "mm",
    "spmm",
    "sddmm_dot",
    "sddmm_add",
    "sddmm_cosine",
    "spmmm",
    "mspmm",
    "masked_row_softmax",
    "masked_row_softmax_backward",
    "set_default_backend",
    "get_default_backend",
    "get_sddmm_chunk",
]

#: Environment override for the SDDMM edge-chunk size (entries), read
#: once at import and validated like ``REPRO_SPMM_BACKEND``.
_SDDMM_CHUNK_ENV_VAR = "REPRO_SDDMM_CHUNK"

#: Default edge-chunk size for SDDMM gathers; bounds peak scratch
#: memory to ``2 * CHUNK * k`` floats regardless of nnz. 32k entries
#: keeps both gather buffers inside the last-level cache at typical
#: feature widths (measured ~2x faster than 1M-entry chunks at k=64).
_DEFAULT_SDDMM_CHUNK = 1 << 15


def _initial_sddmm_chunk() -> int:
    env = os.environ.get(_SDDMM_CHUNK_ENV_VAR, "").strip()
    if not env:
        return _DEFAULT_SDDMM_CHUNK
    try:
        chunk = int(env)
    except ValueError:
        raise ValueError(
            f"${_SDDMM_CHUNK_ENV_VAR}={env!r}: must be a positive integer"
        ) from None
    if chunk <= 0:
        raise ValueError(
            f"${_SDDMM_CHUNK_ENV_VAR}={env!r}: must be a positive integer"
        )
    return chunk


_SDDMM_CHUNK = _initial_sddmm_chunk()


def get_sddmm_chunk() -> int:
    """The active SDDMM edge-chunk size (default or env override)."""
    return _SDDMM_CHUNK


_VALID_BACKENDS = ("scipy", "reference")

#: Environment override for the import-time default backend. CI runs
#: the suite once per value so both the BLAS delegation and the
#: pure-NumPy reference path stay covered.
_BACKEND_ENV_VAR = "REPRO_SPMM_BACKEND"


def _initial_backend() -> str:
    env = os.environ.get(_BACKEND_ENV_VAR, "").strip().lower()
    if not env:
        return "scipy"
    if env not in _VALID_BACKENDS:
        raise ValueError(
            f"${_BACKEND_ENV_VAR}={env!r}: use one of {_VALID_BACKENDS}"
        )
    return env


_DEFAULT_BACKEND = _initial_backend()


def set_default_backend(backend: str) -> None:
    """Select the default SpMM execution backend globally.

    ``"scipy"`` uses BLAS-backed sparse products for the real semiring;
    ``"reference"`` forces the pure-NumPy path everywhere.
    """
    global _DEFAULT_BACKEND
    if backend not in _VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {_VALID_BACKENDS}")
    _DEFAULT_BACKEND = backend


def get_default_backend() -> str:
    """Return the currently-selected default backend."""
    return _DEFAULT_BACKEND


def _resolve_backend(backend: str | None) -> str:
    if backend is None or backend == "auto":
        return _DEFAULT_BACKEND
    if backend not in _VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {_VALID_BACKENDS}")
    return backend


# ----------------------------------------------------------------------
# Dense product
# ----------------------------------------------------------------------
def mm(
    a: np.ndarray,
    b: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Dense matrix product ``a @ b`` with flop accounting (2mkn).

    ``a`` may carry leading batch axes (e.g. a head-stacked
    ``(n, heads, k)`` operand against a shared ``(k, k')`` weight); the
    flop count ``2 · a.size · k'`` then equals the summed per-head
    counts exactly.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    counter.add(2 * a.size * b.shape[-1], "MM")
    return a @ b


# ----------------------------------------------------------------------
# SpMM — semiring-generic sparse-dense product
# ----------------------------------------------------------------------
@_traced("kernel.spmm")
def spmm(
    a: CSRMatrix,
    h: np.ndarray,
    semiring: Semiring = REAL,
    backend: str | None = None,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Sparse-dense product :math:`\\mathcal{A} \\oplus H` over a semiring.

    Parameters
    ----------
    a:
        Sparse ``n x m`` matrix. For tropical semirings its values must
        already be lifted via
        :func:`~repro.tensor.semiring.adjacency_values`.
    h:
        Dense ``m x k`` matrix (a 1-D vector is treated as ``m x 1``).
        When ``a`` carries stacked per-head values ``(nnz, heads)``,
        ``h`` must be head-batched too: ``(m, heads, k)`` or the flat
        equivalent ``(m, heads * k)``; the result mirrors the operand
        layout (``(n, heads, k)`` or ``(n, heads * k)``).
    semiring:
        Aggregation semiring; defaults to the real semiring (sum
        aggregation).
    backend:
        ``"scipy"``, ``"reference"``, or ``None``/"auto" for the module
        default. Only the real semiring has a scipy path.

    Returns
    -------
    Dense ``n x k`` array. Rows with no stored entries receive the
    semiring's additive identity (0 for real/average, ±inf for the
    tropical semirings).
    """
    h = np.asarray(h)
    if a.data.ndim == 2:
        return _spmm_batched(
            a, h, semiring=semiring, backend=backend, counter=counter
        )
    squeeze = h.ndim == 1
    if squeeze:
        h = h[:, None]
    if a.shape[1] != h.shape[0]:
        raise ValueError(
            f"dimension mismatch: {a.shape} @ {h.shape}"
        )
    k = h.shape[1]
    counter.add(2 * a.nnz * k, "SpMM")
    resolved = _resolve_backend(backend)

    if semiring is REAL and resolved == "scipy":
        out = a.to_scipy() @ h
    elif semiring is AVERAGE or semiring.pair_valued:
        out = _spmm_average(a, h)
    else:
        out = _spmm_reference(a, h, semiring)
    return out[:, 0] if squeeze else out


def _spmm_batched(
    a: CSRMatrix,
    h: np.ndarray,
    semiring: Semiring,
    backend: str | None,
    counter: FlopCounter,
) -> np.ndarray:
    """All-heads-at-once SpMM over stacked edge values ``(nnz, heads)``.

    One traversal of the shared pattern serves every head: the scipy
    path multiplies through the cached head-interleaved
    ``(n·heads) x (m·heads)`` pattern (a single BLAS-backed sweep), the
    reference path runs one gather + one segment reduction on the
    ``(nnz, heads, k)`` stack. Flop counts are exactly the summed
    per-head counts (``2·nnz·heads·k``).
    """
    heads = a.data.shape[1]
    flat = h.ndim == 2
    if flat:
        if h.shape[1] % heads:
            raise ValueError(
                f"flat operand width {h.shape[1]} is not a multiple of "
                f"heads={heads}"
            )
        h = h.reshape(h.shape[0], heads, -1)
    if h.ndim != 3 or h.shape[1] != heads:
        raise ValueError(
            f"batched SpMM needs a (m, {heads}, k) or (m, {heads}*k) "
            f"operand, got shape {np.shape(h)}"
        )
    if a.shape[1] != h.shape[0]:
        raise ValueError(f"dimension mismatch: {a.shape} @ {h.shape}")
    k = h.shape[2]
    counter.add(2 * a.nnz * heads * k, "SpMM")
    resolved = _resolve_backend(backend)
    if semiring is REAL and resolved == "scipy":
        out = _spmm_batched_scipy(a, h)
    elif semiring is AVERAGE or semiring.pair_valued:
        num = _spmm_reference(a, h, REAL)
        den = segment_sum(a.data, a.indptr)
        safe = np.where(den == 0, 1, den).astype(h.dtype)
        out = num / safe[:, :, None]
        out[den == 0] = 0
    else:
        out = _spmm_reference(a, h, semiring)
    return out.reshape(a.shape[0], heads * k) if flat else out


def _spmm_batched_scipy(a: CSRMatrix, h: np.ndarray) -> np.ndarray:
    """Real-semiring batched SpMM via the head-interleaved scipy view."""
    heads = a.data.shape[1]
    n, m = a.shape
    k = h.shape[2]
    _, _, perm = a.structure.head_interleave(heads)
    data_x = workspace("spmm.head_data", (a.nnz * heads,), a.data.dtype)
    stacked = (
        a.data if a.data.flags.c_contiguous else np.ascontiguousarray(a.data)
    )
    np.take(stacked.reshape(-1), perm, out=data_x, mode="clip")
    mat = a.structure.head_scipy_view(heads, data_x)
    out = mat @ h.reshape(m * heads, k)
    return out.reshape(n, heads, k)


def _spmm_reference(
    a: CSRMatrix, h: np.ndarray, semiring: Semiring,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Gather + segment-reduce SpMM over an arbitrary scalar semiring.

    The O(nnz·k) gather/combine temporaries live in pooled workspaces
    (see :mod:`repro.tensor.workspace`); only the result is fresh,
    unless the caller supplies ``out``.

    Handles the head-batched layout as well: ``h`` may be
    ``(m, heads, k)`` against stacked ``(nnz, heads)`` edge values —
    the single gather and the single segment reduction then serve all
    heads at once.
    """
    n = a.shape[0]
    feat = h.shape[1:]
    result = out if out is not None else np.empty((n,) + feat, dtype=h.dtype)
    if a.nnz == 0:
        result.fill(semiring.zero)
        return result
    cdtype = np.result_type(a.data, h)
    gathered = workspace("spmm.gather", (a.nnz,) + feat, h.dtype)
    np.take(h, a.indices, axis=0, out=gathered, mode="clip")
    if cdtype == h.dtype:
        combined = gathered
    else:
        combined = workspace("spmm.combine", (a.nnz,) + feat, cdtype)
    edge_vals = a.data[:, None] if a.data.ndim == 1 else a.data[:, :, None]
    semiring.mul(edge_vals, gathered, out=combined)
    lengths = a.row_lengths()
    # Reduce over non-empty rows only (see segment._reduceat for the
    # reduceat quirks this avoids); empty rows get the additive identity.
    if n and not np.any(lengths == 0):
        if cdtype == result.dtype:
            semiring.add.reduceat(combined, a.indptr[:-1], axis=0, out=result)
        else:
            red = workspace("spmm.reduce", (n,) + feat, cdtype)
            semiring.add.reduceat(combined, a.indptr[:-1], axis=0, out=red)
            # "unsafe" matches the old trailing astype(h.dtype) exactly.
            np.copyto(result, red, casting="unsafe")
        return result
    result.fill(semiring.zero)
    nonempty = lengths > 0
    if np.any(nonempty):
        result[nonempty] = semiring.add.reduceat(
            combined, a.indptr[:-1][nonempty], axis=0
        )
    return result


def _spmm_average(a: CSRMatrix, h: np.ndarray) -> np.ndarray:
    """AVERAGE-semiring SpMM: weighted average of neighbour features.

    Executes the pair-valued semiring of Section 4.3 in unpacked form:
    the running pair ``(value, weight)`` is carried as separate
    numerator/denominator arrays, which is exactly the tuple trick the
    paper describes ("keeping track of partial sums and of their
    contributions") vectorised over all rows.
    """
    num = _spmm_reference(a, h, REAL)
    den = segment_sum(a.data, a.indptr)
    safe = np.where(den == 0, 1, den).astype(h.dtype)
    out = num / safe[:, None]
    out[den == 0] = 0
    return out


# ----------------------------------------------------------------------
# SDDMM family — sampled dense-dense products on the edge set
# ----------------------------------------------------------------------
@_traced("kernel.sddmm_dot")
def sddmm_dot(
    pattern: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    counter: FlopCounter = null_counter(),
    chunk: int | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Per-edge dot products: ``e_rc = x[r] . y[c]`` for stored ``(r, c)``.

    This is the fused kernel behind the VA formulation
    :math:`\\mathcal{A} \\odot (H H^T)` — the dense ``H H^T`` is virtual
    and only its sampled entries are ever computed, in bounded-memory
    edge chunks. The COO row vector comes from the pattern's structure
    cache and the two edge gathers run through pooled workspaces, so a
    steady-state call allocates only the returned value vector (or
    nothing, with ``out=``).

    Head-batched operands ``(n, heads, k)`` produce ``(nnz, heads)``
    per-edge values — one pattern sweep computes every head's dot
    product, with flops equal to the summed per-head counts.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.ndim not in (2, 3) or x.ndim != y.ndim:
        raise ValueError("sddmm_dot operands must both be 2-D or both 3-D")
    if x.shape[1:] != y.shape[1:]:
        raise ValueError("feature dimensions differ in sddmm_dot")
    if x.shape[0] != pattern.shape[0] or y.shape[0] != pattern.shape[1]:
        raise ValueError("operand row counts do not match pattern shape")
    if chunk is None:
        chunk = _SDDMM_CHUNK
    nnz = pattern.nnz
    feat = x.shape[1:]
    if x.ndim == 3:
        # The chunk budget counts edges at single-head width; stacked
        # operands gather ``heads`` times more scalars per edge, so shrink
        # the edge chunk to keep the scratch buffers cache-sized (measured
        # ~2x on 8-head float64 SDDMMs versus head-oblivious chunking).
        chunk = max(1, chunk // feat[0])
    counter.add(2 * nnz * int(np.prod(feat)), "SDDMM")
    rows = pattern.expand_rows()
    cols = pattern.indices
    if out is None:
        out = np.empty((nnz,) + feat[:-1], dtype=np.result_type(x, y))
    csize = min(chunk, nnz)
    gx = workspace("sddmm_dot.x", (csize,) + feat, x.dtype)
    gy = workspace("sddmm_dot.y", (csize,) + feat, y.dtype)
    spec = "ij,ij->i" if x.ndim == 2 else "ihj,ihj->ih"
    for start in range(0, nnz, chunk):
        stop = min(start + chunk, nnz)
        bx = gx[: stop - start]
        by = gy[: stop - start]
        np.take(x, rows[start:stop], axis=0, out=bx, mode="clip")
        np.take(y, cols[start:stop], axis=0, out=by, mode="clip")
        np.einsum(spec, bx, by, out=out[start:stop])
    return out


@_traced("kernel.sddmm_add")
def sddmm_add(
    pattern: CSRMatrix,
    u: np.ndarray,
    v: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Per-edge sums: ``e_rc = u[r] + v[c]`` for stored ``(r, c)``.

    The GAT logit kernel: the virtual matrix
    :math:`C = \\mathrm{rep}(u) + \\mathrm{rep}^T(v)` of Figure 2 is
    sampled directly on the adjacency pattern. Head-stacked operands
    ``(n, heads)`` yield stacked ``(nnz, heads)`` logits in the same
    two gathers.
    """
    u = np.asarray(u)
    v = np.asarray(v)
    if (
        u.ndim not in (1, 2)
        or u.ndim != v.ndim
        or u.shape[1:] != v.shape[1:]
        or u.shape[0] != pattern.shape[0]
        or v.shape[0] != pattern.shape[1]
    ):
        raise ValueError(
            "u/v must be matching vectors or (n, heads) stacks matching "
            "the pattern shape"
        )
    nnz = pattern.nnz
    shape = (nnz,) + u.shape[1:]
    counter.add(nnz * int(np.prod(u.shape[1:])), "SDDMM")
    gu = workspace("sddmm_add.u", shape, u.dtype)
    gv = workspace("sddmm_add.v", shape, v.dtype)
    np.take(u, pattern.expand_rows(), axis=0, out=gu, mode="clip")
    np.take(v, pattern.indices, axis=0, out=gv, mode="clip")
    out = np.empty(shape, dtype=np.result_type(u, v))
    np.add(gu, gv, out=out)
    return out


@_traced("kernel.sddmm_cosine")
def sddmm_cosine(
    pattern: CSRMatrix,
    h: np.ndarray,
    norms: np.ndarray | None = None,
    eps: float = 1e-12,
    counter: FlopCounter = null_counter(),
    chunk: int | None = None,
    out: np.ndarray | None = None,
    with_denom: bool = False,
) -> tuple[np.ndarray, ...]:
    """Per-edge cosine similarities (the AGNN :math:`\\Psi` kernel).

    Computes ``e_rc = (h[r] . h[c]) / (n_r * n_c)`` on the stored
    entries, where ``n`` holds the row L2 norms — the global
    formulation's Hadamard division by the virtual outer product
    :math:`n n^T`, sampled on the pattern. The row vector is read once
    from the pattern's structure cache (shared with the inner
    :func:`sddmm_dot`), and the division runs in place over the dot
    values.

    Returns
    -------
    (values, norms) or (values, norms, denom):
        Edge cosine values and the (possibly freshly computed) row
        norms, which the backward pass reuses. With
        ``with_denom=True`` the eps-clipped per-edge denominator
        ``max(n_r * n_c, eps)`` is returned as well, so the backward
        pass can divide by the exact forward quantity instead of
        re-gathering both norm endpoints.
    """
    h = np.asarray(h)
    if norms is None:
        norms = np.sqrt(np.einsum("...j,...j->...", h, h))
        counter.add(2 * h.size, "norms")
    values = sddmm_dot(pattern, h, h, counter=counter, chunk=chunk, out=out)
    nnz = pattern.nnz
    eshape = (nnz,) + h.shape[1:-1]
    counter.add(2 * nnz * int(np.prod(h.shape[1:-1])), "SDDMM")
    rows = pattern.expand_rows()
    ndtype = norms.dtype
    if with_denom:
        denom = np.empty(eshape, dtype=ndtype)
    else:
        denom = workspace("sddmm_cosine.denom", eshape, ndtype)
    tmp = workspace("sddmm_cosine.tmp", eshape, ndtype)
    np.take(norms, rows, axis=0, out=denom, mode="clip")
    np.take(norms, pattern.indices, axis=0, out=tmp, mode="clip")
    np.multiply(denom, tmp, out=denom)
    np.maximum(denom, eps, out=denom)
    np.divide(values, denom, out=values)
    if with_denom:
        return values, norms, denom
    return values, norms


# ----------------------------------------------------------------------
# Composite kernels identified by the paper
# ----------------------------------------------------------------------
@_traced("kernel.spmmm")
def spmmm(
    a: CSRMatrix,
    b: np.ndarray,
    c: np.ndarray,
    semiring: Semiring = REAL,
    backend: str | None = None,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """SpMMM: sparse × dense × dense, :math:`\\mathcal{A} B C`.

    The forward-pass pattern :math:`\\Psi H W` (Table 2, new kernel).
    The association order is chosen by flop count: ``(A B) C`` costs
    ``2 nnz k + 2 n k k'`` while ``A (B C)`` costs ``2 m k k' + 2 nnz k'``;
    for tall-skinny ``B`` and small ``C`` the difference is the
    :math:`\\Phi \\circ \\oplus` composition-order choice of Section 4.4.

    When ``a`` carries stacked per-head values ``(nnz, heads)``, ``b``
    must be head-batched ``(m, heads, k)`` and ``c`` stays a shared
    ``(k, k')`` weight; both association orders then cost ``heads``
    times their per-head figure, so the order choice matches the
    per-head loop exactly.
    """
    b = np.asarray(b)
    c = np.asarray(c)
    heads = a.data.shape[1] if a.data.ndim == 2 else 1
    if heads > 1 and (b.ndim != 3 or b.shape[1] != heads):
        raise ValueError(
            f"batched SpMMM needs a (m, {heads}, k) middle operand, got "
            f"shape {b.shape}"
        )
    k, kp = b.shape[-1], c.shape[1]
    cost_left = heads * (2 * a.nnz * k + 2 * a.shape[0] * k * kp)
    cost_right = heads * (2 * b.shape[0] * k * kp + 2 * a.nnz * kp)
    if cost_left <= cost_right:
        return mm(
            spmm(a, b, semiring=semiring, backend=backend, counter=counter),
            c,
            counter=counter,
        )
    return spmm(
        a, mm(b, c, counter=counter), semiring=semiring, backend=backend,
        counter=counter,
    )


@_traced("kernel.mspmm")
def mspmm(
    d: np.ndarray,
    a: CSRMatrix,
    e: np.ndarray,
    backend: str | None = None,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """MSpMM: dense × sparse × dense, :math:`D \\mathcal{A} E`.

    The backward-pass pattern (Table 2, new kernel), e.g. the weight
    gradient :math:`H^T \\Psi^T G`. Evaluated as ``D (A E)`` when that
    is cheaper, otherwise as ``((A^T D^T))^T E`` — both reuse the SpMM
    kernel, since a dense-times-sparse product is the transpose of a
    sparse-times-dense one.

    With stacked per-head values ``(nnz, heads)`` on ``a``, ``d`` is a
    shared ``(kd, n)`` left operand, ``e`` a head-batched
    ``(m, heads, ke)`` right operand, and the result is per-head:
    ``(heads, kd, ke)`` — the batched form of the per-head weight
    gradients.
    """
    d = np.asarray(d)
    e = np.asarray(e)
    if a.data.ndim == 2:
        return _mspmm_batched(d, a, e, backend=backend, counter=counter)
    kd, ke = d.shape[0], e.shape[1]
    cost_right = 2 * a.nnz * ke + 2 * d.shape[0] * a.shape[0] * ke
    cost_left = 2 * a.nnz * kd + 2 * kd * a.shape[1] * ke
    if cost_right <= cost_left:
        return mm(
            d,
            spmm(a, e, backend=backend, counter=counter),
            counter=counter,
        )
    da = spmm(a.transpose(), d.T, backend=backend, counter=counter).T
    return mm(da, e, counter=counter)


def _mspmm_batched(
    d: np.ndarray,
    a: CSRMatrix,
    e: np.ndarray,
    backend: str | None,
    counter: FlopCounter,
) -> np.ndarray:
    """Head-batched MSpMM: shared ``(kd, n)`` × stacked A × ``(m, H, ke)``.

    Returns ``(heads, kd, ke)``. Association order follows the same
    flop comparison as the scalar kernel, scaled uniformly by
    ``heads``, so it agrees with the per-head loop's choice.
    """
    heads = a.data.shape[1]
    if e.ndim != 3 or e.shape[1] != heads:
        raise ValueError(
            f"batched MSpMM needs a (m, {heads}, ke) right operand, got "
            f"shape {e.shape}"
        )
    if d.ndim != 2 or d.shape[1] != a.shape[0]:
        raise ValueError(
            f"batched MSpMM needs a shared (kd, {a.shape[0]}) left "
            f"operand, got shape {d.shape}"
        )
    kd, ke = d.shape[0], e.shape[2]
    cost_right = heads * (2 * a.nnz * ke + 2 * kd * a.shape[0] * ke)
    cost_left = heads * (2 * a.nnz * kd + 2 * kd * a.shape[1] * ke)
    if cost_right <= cost_left:
        ae = spmm(a, e, backend=backend, counter=counter)
        counter.add(2 * heads * kd * a.shape[0] * ke, "MM")
        return np.einsum("kn,nhe->hke", d, ae)
    dt = np.broadcast_to(d.T[:, None, :], (a.shape[0], heads, kd))
    da = spmm(a.transpose(), dt, backend=backend, counter=counter)
    counter.add(2 * heads * kd * a.shape[1] * ke, "MM")
    return np.einsum("mhk,mhe->hke", da, e)


# ----------------------------------------------------------------------
# Graph softmax (Section 4.2) on a sparse pattern
# ----------------------------------------------------------------------
@_traced("kernel.masked_row_softmax")
def masked_row_softmax(
    s: CSRMatrix,
    counter: FlopCounter = null_counter(),
    out: np.ndarray | None = None,
) -> CSRMatrix:
    """Row-wise softmax over the stored entries of ``s``.

    The global formulation
    :math:`\\mathrm{sm}(\\mathcal{X}) = \\exp(\\mathcal{X}) \\oslash
    \\mathrm{rs}_n(\\exp(\\mathcal{X}))` evaluated without materialising
    the replicated :math:`n \\times n` denominator (Section 6.1). Both
    replications are single gathers through the pattern's cached COO
    row vector; ``out`` receives the softmax values in place. Stacked
    ``(nnz, heads)`` values are normalised per head in the same sweep.
    """
    counter.add(5 * s.data.size, "softmax")
    return s.with_data(
        segment_softmax(s.data, s.indptr, rows=s.expand_rows(), out=out)
    )


@_traced("kernel.masked_row_softmax_backward")
def masked_row_softmax_backward(
    softmax_values: np.ndarray,
    grad_values: np.ndarray,
    indptr: np.ndarray,
    rows: np.ndarray | None = None,
    counter: FlopCounter = null_counter(),
) -> np.ndarray:
    """Gradient of :func:`masked_row_softmax` w.r.t. its pre-softmax input.

    For row-wise softmax ``S = sm(E)``:

    .. math:: dE = S \\odot (dS - \\mathrm{rs}(\\mathrm{sum}(S \\odot dS)))

    i.e. each row subtracts the row-scalar :math:`\\langle S, dS\\rangle`
    before rescaling — the Jacobian-vector product expressed with the
    Table-2 building blocks ``sum`` and ``rep`` only. ``rows`` (the
    pattern's cached COO row vector) routes the replication through a
    pooled gather buffer instead of a fresh ``repeat``.
    """
    counter.add(4 * softmax_values.size, "softmax_bwd")
    inner = segment_sum(softmax_values * grad_values, indptr)
    if rows is not None:
        rep = expand_segments(
            inner, indptr, rows=rows,
            out=workspace(
                "softmax_bwd.rep", softmax_values.shape, inner.dtype
            ),
        )
        return softmax_values * (grad_values - rep)
    return softmax_values * (grad_values - expand_segments(inner, indptr))
