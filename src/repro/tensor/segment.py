"""Segment reductions over CSR row boundaries.

All per-neighbourhood operations of the paper — row summation
(``sum(X) = X 1`` from Table 2), the graph softmax of Section 4.2, and
min/max/average aggregations — reduce, on a CSR layout, to *segment
reductions*: a reduction of ``values[indptr[i]:indptr[i+1]]`` per row
``i``. NumPy's ``ufunc.reduceat`` implements this in C, with one quirk:
an empty segment does not produce the identity element but copies the
next value. Every helper here repairs empty segments explicitly, so
isolated vertices are handled correctly throughout the library.

The scatter-style counterpart — summing per-entry values into their
*column* — is :func:`bincount_sum`, a single C pass via
``np.bincount`` replacing the notoriously slow ``np.add.at``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_sum",
    "segment_max",
    "segment_min",
    "segment_mean",
    "segment_softmax",
    "expand_segments",
    "bincount_sum",
]


def _reduceat(ufunc: np.ufunc, values: np.ndarray, indptr: np.ndarray,
              identity: float) -> np.ndarray:
    """Apply ``ufunc.reduceat`` per segment, repairing empty segments.

    ``values`` may be 1-D (per-edge scalars) or 2-D (per-edge feature
    rows); reduction is along axis 0 within each segment.
    """
    n_seg = indptr.shape[0] - 1
    if n_seg == 0:
        shape = (0,) if values.ndim == 1 else (0, values.shape[1])
        return np.empty(shape, dtype=values.dtype)
    lengths = np.diff(indptr)
    shape = (n_seg,) if values.ndim == 1 else (n_seg, values.shape[1])
    if values.shape[0] == 0:
        return np.full(shape, identity, dtype=values.dtype)
    # Reduce over non-empty segments only: their starts are strictly
    # increasing and < len(values), and consecutive non-empty starts
    # span exactly the elements of the earlier segment (empty segments
    # contribute none). This sidesteps both reduceat quirks at once —
    # repeated indices and out-of-range trailing starts.
    nonempty = lengths > 0
    out = np.full(shape, identity, dtype=values.dtype)
    if np.any(nonempty):
        out[nonempty] = ufunc.reduceat(values, indptr[:-1][nonempty], axis=0)
    return out


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sum; empty segments yield 0."""
    return _reduceat(np.add, np.asarray(values), np.asarray(indptr), 0)


def segment_max(values: np.ndarray, indptr: np.ndarray,
                identity: float = -np.inf) -> np.ndarray:
    """Per-segment maximum; empty segments yield ``identity``."""
    return _reduceat(np.maximum, np.asarray(values), np.asarray(indptr), identity)


def segment_min(values: np.ndarray, indptr: np.ndarray,
                identity: float = np.inf) -> np.ndarray:
    """Per-segment minimum; empty segments yield ``identity``."""
    return _reduceat(np.minimum, np.asarray(values), np.asarray(indptr), identity)


def segment_mean(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment arithmetic mean; empty segments yield 0."""
    values = np.asarray(values)
    indptr = np.asarray(indptr)
    total = segment_sum(values, indptr)
    lengths = np.diff(indptr).astype(values.dtype)
    safe = np.maximum(lengths, 1)
    if values.ndim == 2:
        safe = safe[:, None]
    return total / safe


def bincount_sum(
    indices: np.ndarray, weights: np.ndarray, minlength: int
) -> np.ndarray:
    """Scatter-add ``weights`` into bins: ``out[indices[e]] += weights[e]``.

    A dtype-preserving wrapper around ``np.bincount``: accumulation
    happens in float64 (bincount's native precision) and the result is
    cast back to ``weights``' dtype. Replaces ``np.add.at``, which
    dispatches per element, on all column-scatter paths (``col_sum``,
    GAT/AGNN column gradients).

    ``weights`` may be 2-D (``(nnz, heads)`` stacked per-head values);
    the scatter then runs as one C pass over offset bins
    ``indices[e] * heads + h`` and returns ``(minlength, heads)``.
    """
    weights = np.asarray(weights)
    indices = np.asarray(indices)
    if weights.ndim == 2:
        heads = weights.shape[1]
        keys = indices[:, None] * np.int64(heads) + np.arange(
            heads, dtype=np.int64
        )
        out = np.bincount(
            keys.reshape(-1),
            weights=np.ascontiguousarray(weights).reshape(-1),
            minlength=minlength * heads,
        )
        return out.reshape(minlength, heads).astype(weights.dtype, copy=False)
    out = np.bincount(indices, weights=weights, minlength=minlength)
    return out.astype(weights.dtype, copy=False)


def expand_segments(
    per_segment: np.ndarray,
    indptr: np.ndarray,
    rows: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Replicate one value per segment back to per-entry length.

    This is the replication step ``rep_n(x) = x 1^T`` of Table 2,
    restricted to the sparsity pattern — the virtual n×n replication is
    never materialised (Section 6.1), only its sampled entries.

    When ``rows`` (the cached COO row vector of the pattern) is given,
    the replication is a single ``np.take`` — no ``repeat`` of the
    segment lengths — and may write into ``out``.
    """
    if rows is not None:
        return np.take(per_segment, rows, axis=0, out=out, mode="clip")
    lengths = np.diff(indptr)
    return np.repeat(per_segment, lengths, axis=0)


def segment_softmax(
    values: np.ndarray,
    indptr: np.ndarray,
    rows: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Numerically-stable softmax within each segment.

    Implements the global graph-softmax formulation of Section 4.2,

    .. math:: \\mathrm{sm}(\\mathcal{X}) = \\exp(\\mathcal{X}) \\oslash
              \\mathrm{rs}_n(\\exp(\\mathcal{X}))

    on the stored entries only: ``exp`` per edge, row sums via
    multiplication by a column of ones (step 2), replication (step 3)
    and element-wise division (step 4). A per-segment max-shift is
    applied first for stability, which leaves the softmax unchanged.

    ``rows`` (the pattern's cached COO row vector) routes both
    replications through pooled gather buffers; ``out`` receives the
    result in place. Without them the allocation behaviour is the
    classic one.
    """
    values = np.asarray(values)
    indptr = np.asarray(indptr)
    if values.shape[0] == 0:
        return values.copy() if out is None else out
    shift = segment_max(values, indptr, identity=0.0)
    res_dtype = (
        values.dtype
        if np.issubdtype(values.dtype, np.inexact)
        else np.dtype(np.float64)
    )
    result = out if out is not None else np.empty(values.shape, dtype=res_dtype)
    if rows is not None:
        from repro.tensor.workspace import workspace

        rep = workspace("segment_softmax.rep", values.shape, res_dtype)
        # axis=0 keeps the per-segment rows aligned for 2-D (batched
        # per-head) values; for 1-D values it matches the flat take.
        np.take(shift, rows, axis=0, out=rep, mode="clip")
        np.subtract(values, rep, out=result)
        np.exp(result, out=result)
        denom = segment_sum(result, indptr)
        denom = np.where(denom == 0, 1, denom)
        np.take(denom, rows, axis=0, out=rep, mode="clip")
        np.divide(result, rep, out=result)
        return result
    exp = np.exp(values - expand_segments(shift, indptr))
    denom = segment_sum(exp, indptr)
    # Rows with no entries never index into denom; guard regardless.
    denom = np.where(denom == 0, 1, denom)
    np.divide(exp, expand_segments(denom, indptr), out=result)
    return result
