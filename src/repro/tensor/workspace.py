"""Reusable scratch buffers for the kernel hot path.

Steady-state training repeats the same kernel shapes every iteration;
the gathers inside :func:`~repro.tensor.kernels.sddmm_dot`,
:func:`~repro.tensor.kernels._spmm_reference` and the graph softmax
would otherwise allocate O(nnz·k) temporaries per call. This module
keeps one growing buffer per ``(tag, dtype)`` pair and hands out
shaped views of it. Capacity is tracked flat (element count, not
shape), so the head-batched kernels' wider ``(chunk, heads, k)`` and
``(nnz, heads)`` requests reuse the same backing store as their
single-head counterparts — switching a model between the batched and
per-head paths never thrashes the pool.

Rules of use:

* Workspaces are for *internal* temporaries that do not escape the
  call (or for explicit ``out=`` arguments the caller owns). Kernel
  return values are always freshly allocated unless the caller passes
  ``out=``.
* Pools are thread-local: the SPMD simulator runs ranks on threads and
  each gets its own buffers.
* :func:`set_workspace_reuse` turns pooling off globally (every
  request then returns a fresh array), :func:`clear_workspaces`
  releases the current thread's buffers.

Pool bounding (serving workloads)
---------------------------------
One training run repeats one shape, so monotone growth is free — but
the serving coalescer flushes *mixed-size* union batches through the
same kernels, and every new high-water batch would otherwise pin its
peak buffer forever (per worker thread). :func:`set_workspace_budget`
caps each thread's pooled bytes: when an allocation pushes the pool
over budget, least-recently-used ``(tag, dtype)`` buffers are evicted
(the buffer just allocated is exempt — a request larger than the whole
budget still succeeds, it just leaves nothing else pooled). Eviction
only drops the pool's reference; live views returned earlier keep
their backing array alive, so bounding is always safe, never aliasing.
The budget default comes from ``$REPRO_WORKSPACE_BUDGET_MB``
(validated positive number, unset = unbounded), resolved lazily on
first use.

Occupancy is observable: the ``workspace.pool_bytes`` /
``workspace.pool_high_water_bytes`` gauges in
:func:`repro.obs.metrics.metrics` track the calling thread's pool and
the process-wide high water; :func:`workspace_pool_bytes` /
:func:`workspace_high_water_bytes` expose the same numbers directly.

Buffer hits/allocations/evictions are reported to
:func:`repro.util.counters.event_counter` as ``workspace.hit`` /
``workspace.alloc`` / ``workspace.evict``.
"""

from __future__ import annotations

import math
import os
import threading

import numpy as np

from repro.util.counters import event_counter

__all__ = [
    "workspace",
    "set_workspace_reuse",
    "workspace_reuse_enabled",
    "clear_workspaces",
    "set_workspace_budget",
    "workspace_budget",
    "workspace_budget_default",
    "workspace_pool_bytes",
    "workspace_high_water_bytes",
    "WORKSPACE_BUDGET_ENV_VAR",
]

_ENABLED = True

#: Environment variable giving the default per-thread pool budget in
#: mebibytes (a validated positive number; unset means unbounded).
WORKSPACE_BUDGET_ENV_VAR = "REPRO_WORKSPACE_BUDGET_MB"

_UNRESOLVED = object()
#: Per-thread pooled-byte cap (``None`` = unbounded). Starts
#: unresolved and is materialised from the environment on first use.
_BUDGET: int | None | object = _UNRESOLVED

_HW_LOCK = threading.Lock()
_HIGH_WATER = 0


class _Pool(threading.local):
    def __init__(self) -> None:
        self.buffers: dict[tuple[str, np.dtype], np.ndarray] = {}
        self.last_used: dict[tuple[str, np.dtype], int] = {}
        self.total_bytes = 0
        self.clock = 0


_POOL = _Pool()


def set_workspace_reuse(enabled: bool) -> None:
    """Globally enable/disable scratch-buffer pooling."""
    global _ENABLED
    _ENABLED = bool(enabled)


def workspace_reuse_enabled() -> bool:
    """Whether scratch buffers are currently pooled."""
    return _ENABLED


def clear_workspaces() -> None:
    """Release the calling thread's pooled buffers."""
    _POOL.buffers.clear()
    _POOL.last_used.clear()
    _POOL.total_bytes = 0
    _set_pool_gauge()


def workspace_budget_default() -> int | None:
    """Resolve the budget from ``$REPRO_WORKSPACE_BUDGET_MB`` (bytes).

    Unset (or empty) means unbounded; anything else must parse as a
    positive number of mebibytes — a silently ignored typo would
    defeat the bounding the serving engine relies on.
    """
    raw = os.environ.get(WORKSPACE_BUDGET_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        mb = float(raw.strip())
    except ValueError:
        mb = -1.0
    if mb <= 0 or not math.isfinite(mb):
        raise ValueError(
            f"invalid ${WORKSPACE_BUDGET_ENV_VAR}={raw!r}; "
            "must be a positive number of MiB"
        )
    return int(mb * (1 << 20))


def set_workspace_budget(max_bytes: int | None) -> None:
    """Cap each thread's pooled bytes (``None`` = unbounded).

    Takes effect on the *next* allocation; already-pooled buffers are
    not dropped eagerly (call :func:`clear_workspaces` for that).
    """
    global _BUDGET
    if max_bytes is not None:
        max_bytes = int(max_bytes)
        if max_bytes <= 0:
            raise ValueError("workspace budget must be positive (or None)")
    _BUDGET = max_bytes


def workspace_budget() -> int | None:
    """The effective per-thread pool budget in bytes (``None`` = ∞)."""
    global _BUDGET
    if _BUDGET is _UNRESOLVED:
        _BUDGET = workspace_budget_default()
    return _BUDGET  # type: ignore[return-value]


def workspace_pool_bytes() -> int:
    """Bytes currently pooled by the calling thread."""
    return _POOL.total_bytes


def workspace_high_water_bytes() -> int:
    """Largest single-thread pool size seen process-wide."""
    return _HIGH_WATER


def _set_pool_gauge() -> None:
    global _HIGH_WATER
    total = _POOL.total_bytes
    # Local import: repro.obs.metrics is dependency-free, but keeping
    # the import out of module scope keeps tensor importable first.
    from repro.obs.metrics import metrics

    registry = metrics()
    registry.gauge("workspace.pool_bytes").set(total)
    if total > _HIGH_WATER:
        with _HW_LOCK:
            if total > _HIGH_WATER:
                _HIGH_WATER = total
        registry.gauge("workspace.pool_high_water_bytes").set(_HIGH_WATER)


def _evict(exempt: tuple[str, np.dtype], budget: int) -> None:
    """Drop least-recently-used buffers until the pool fits ``budget``.

    ``exempt`` (the key just served) is never evicted: an oversized
    request succeeds and simply leaves nothing else pooled.
    """
    pool = _POOL
    counter = event_counter()
    while pool.total_bytes > budget and len(pool.buffers) > 1:
        victim = min(
            (k for k in pool.buffers if k != exempt),
            key=pool.last_used.__getitem__,
            default=None,
        )
        if victim is None:
            break
        pool.total_bytes -= pool.buffers.pop(victim).nbytes
        pool.last_used.pop(victim, None)
        counter.bump("workspace.evict")


def workspace(tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """An uninitialised scratch array of ``shape``/``dtype``.

    Served from the calling thread's pool, keyed by ``(tag, dtype)``;
    the backing buffer grows geometrically and is sliced to size.
    Distinct tags never alias, so two live workspaces are safe as long
    as their tags differ. Contents are undefined.
    """
    dtype = np.dtype(dtype)
    size = math.prod(shape)
    if not _ENABLED:
        return np.empty(shape, dtype=dtype)
    pool = _POOL
    key = (tag, dtype)
    pool.clock += 1
    pool.last_used[key] = pool.clock
    buf = pool.buffers.get(key)
    if buf is None or buf.shape[0] < size:
        capacity = size if buf is None else max(size, 2 * buf.shape[0])
        if buf is not None:
            pool.total_bytes -= buf.nbytes
        buf = np.empty(capacity, dtype=dtype)
        pool.buffers[key] = buf
        pool.total_bytes += buf.nbytes
        event_counter().bump("workspace.alloc")
        budget = workspace_budget()
        if budget is not None and pool.total_bytes > budget:
            _evict(key, budget)
        _set_pool_gauge()
    else:
        event_counter().bump("workspace.hit")
    return buf[:size].reshape(shape)
