"""Reusable scratch buffers for the kernel hot path.

Steady-state training repeats the same kernel shapes every iteration;
the gathers inside :func:`~repro.tensor.kernels.sddmm_dot`,
:func:`~repro.tensor.kernels._spmm_reference` and the graph softmax
would otherwise allocate O(nnz·k) temporaries per call. This module
keeps one growing buffer per ``(tag, dtype)`` pair and hands out
shaped views of it. Capacity is tracked flat (element count, not
shape), so the head-batched kernels' wider ``(chunk, heads, k)`` and
``(nnz, heads)`` requests reuse the same backing store as their
single-head counterparts — switching a model between the batched and
per-head paths never thrashes the pool.

Rules of use:

* Workspaces are for *internal* temporaries that do not escape the
  call (or for explicit ``out=`` arguments the caller owns). Kernel
  return values are always freshly allocated unless the caller passes
  ``out=``.
* Pools are thread-local: the SPMD simulator runs ranks on threads and
  each gets its own buffers.
* :func:`set_workspace_reuse` turns pooling off globally (every
  request then returns a fresh array), :func:`clear_workspaces`
  releases the current thread's buffers.

Buffer hits/allocations are reported to
:func:`repro.util.counters.event_counter` as ``workspace.hit`` /
``workspace.alloc``.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.util.counters import event_counter

__all__ = [
    "workspace",
    "set_workspace_reuse",
    "workspace_reuse_enabled",
    "clear_workspaces",
]

_ENABLED = True


class _Pool(threading.local):
    def __init__(self) -> None:
        self.buffers: dict[tuple[str, np.dtype], np.ndarray] = {}


_POOL = _Pool()


def set_workspace_reuse(enabled: bool) -> None:
    """Globally enable/disable scratch-buffer pooling."""
    global _ENABLED
    _ENABLED = bool(enabled)


def workspace_reuse_enabled() -> bool:
    """Whether scratch buffers are currently pooled."""
    return _ENABLED


def clear_workspaces() -> None:
    """Release the calling thread's pooled buffers."""
    _POOL.buffers.clear()


def workspace(tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """An uninitialised scratch array of ``shape``/``dtype``.

    Served from the calling thread's pool, keyed by ``(tag, dtype)``;
    the backing buffer grows geometrically and is sliced to size.
    Distinct tags never alias, so two live workspaces are safe as long
    as their tags differ. Contents are undefined.
    """
    dtype = np.dtype(dtype)
    size = math.prod(shape)
    if not _ENABLED:
        return np.empty(shape, dtype=dtype)
    key = (tag, dtype)
    buf = _POOL.buffers.get(key)
    if buf is None or buf.shape[0] < size:
        capacity = size if buf is None else max(size, 2 * buf.shape[0])
        buf = np.empty(capacity, dtype=dtype)
        _POOL.buffers[key] = buf
        event_counter().bump("workspace.alloc")
    else:
        event_counter().bump("workspace.hit")
    return buf[:size].reshape(shape)
