"""Semiring algebra for generalised aggregations (Section 4.3).

The paper expresses arbitrary neighbourhood aggregations
:math:`\\mathcal{A} \\oplus H` as sparse-dense matrix products over
semirings. A semiring is a tuple ``(X, op1, op2, el1, el2)`` where
``(X, op1)`` is a commutative monoid with identity ``el1`` (the
*additive* reduction across a neighbourhood) and ``(X, op2)`` a monoid
with identity ``el2`` (the *multiplicative* combination of an adjacency
entry with a feature).

Provided instances:

``REAL``
    :math:`(\\mathbb{R}, +, \\cdot, 0, 1)` — the standard sum aggregation.
``TROPICAL_MIN``
    :math:`(\\mathbb{R}\\cup\\{\\infty\\}, \\min, +, \\infty, 0)` — min
    aggregation. Adjacency entries must carry the multiplicative
    identity 0 (see :func:`adjacency_values`) so that the product over
    a neighbourhood reduces to the plain minimum of neighbour features.
``TROPICAL_MAX``
    :math:`(\\mathbb{R}\\cup\\{-\\infty\\}, \\max, +, -\\infty, 0)` — max
    aggregation.
``AVERAGE``
    The pair-valued semiring of Section 4.3 computing weighted
    averages: elements are pairs ``(value, weight)``; the adjacency
    entry ``x`` is lifted to ``(x, x)``, combination tracks partial
    weighted sums, and merging computes the running weighted average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Semiring",
    "REAL",
    "TROPICAL_MIN",
    "TROPICAL_MAX",
    "AVERAGE",
    "adjacency_values",
    "semiring_matmul_dense",
    "average_lift",
    "average_mul",
    "average_merge",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring over NumPy scalars, executable with ufunc reductions.

    Attributes
    ----------
    name:
        Human-readable identifier.
    add:
        The commutative reduction ufunc (``op1``).
    mul:
        The combination ufunc (``op2``).
    zero:
        Identity of ``add`` (``el1``); also the value of *absent*
        sparse entries.
    one:
        Identity of ``mul`` (``el2``); the value adjacency entries must
        carry for pure neighbourhood reductions.
    pair_valued:
        ``True`` only for the AVERAGE semiring, whose elements are
        (value, weight) pairs and which is special-cased by the SpMM
        kernel.
    """

    name: str
    add: np.ufunc | None
    mul: np.ufunc | None
    zero: float
    one: float
    pair_valued: bool = field(default=False)

    def __post_init__(self) -> None:
        if not self.pair_valued:
            if self.add is None or self.mul is None:
                raise ValueError("scalar semirings need add and mul ufuncs")

    def reduce(self, values: np.ndarray, axis: int = 0) -> np.ndarray:
        """Reduce an array with ``op1`` along ``axis``."""
        if self.pair_valued:
            raise TypeError("pair-valued semiring has no scalar reduce")
        return self.add.reduce(values, axis=axis)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Semiring({self.name})"


REAL = Semiring("real", np.add, np.multiply, 0.0, 1.0)
TROPICAL_MIN = Semiring("tropical_min", np.minimum, np.add, np.inf, 0.0)
TROPICAL_MAX = Semiring("tropical_max", np.maximum, np.add, -np.inf, 0.0)
AVERAGE = Semiring("average", None, None, 0.0, 1.0, pair_valued=True)


def adjacency_values(semiring: Semiring, weights: np.ndarray) -> np.ndarray:
    """Lift adjacency weights into the semiring's domain.

    For the real and average semirings the stored weights are used as
    is. For tropical semirings, a pure min/max over the neighbourhood
    requires the *multiplicative identity* (0) at every stored entry —
    this mirrors the paper's remark that one "first transforms A by
    setting each off-diagonal zero entry as infinity" (absent entries
    already behave as the additive identity in our sparse kernels).
    """
    weights = np.asarray(weights)
    if semiring.name in ("tropical_min", "tropical_max"):
        return np.full_like(weights, semiring.one)
    return weights


# ----------------------------------------------------------------------
# AVERAGE semiring pair operations (Section 4.3, verbatim semantics)
# ----------------------------------------------------------------------
def average_lift(x: np.ndarray) -> np.ndarray:
    """Lift adjacency entries ``x`` to pairs ``(x, x)``, shape (..., 2)."""
    x = np.asarray(x, dtype=np.float64)
    return np.stack([x, x], axis=-1)


def average_mul(a: np.ndarray, h: np.ndarray) -> np.ndarray:
    """``op2`` combining a lifted adjacency pair with a feature scalar.

    ``(a1, a2) ⊗ h = (a1 * h, a2)`` — the weighted feature keeps its
    weight for the later merge.
    """
    a = np.asarray(a, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    return np.stack([a[..., 0] * h, a[..., 1]], axis=-1)


def average_merge(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``op1`` merging two partial weighted averages.

    ``(v1, w1) ⊕ (v2, w2) = ((v1*w1 + v2*w2)/(w1+w2), w1+w2)`` where
    ``v`` is the running weighted average and ``w`` the accumulated
    weight. This matches the paper's merge that "computes the weighted
    average" while "keeping track of partial sums and of their
    contributions". Associative and commutative, with identity (0, 0).
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    w = p[..., 1] + q[..., 1]
    safe_w = np.where(w == 0, 1.0, w)
    v = (p[..., 0] * p[..., 1] + q[..., 0] * q[..., 1]) / safe_w
    v = np.where(w == 0, 0.0, v)
    return np.stack([v, w], axis=-1)


def semiring_matmul_dense(
    semiring: Semiring, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Reference dense matrix product over a semiring (testing oracle).

    ``C[i, j] = op1_k( op2(a[i, k], b[k, j]) )`` with the convention
    that absent entries of a sparse ``a`` equal ``semiring.zero``. For
    the AVERAGE semiring, rows of ``a`` are interpreted as weights and
    ``C[i, j]`` is the a-weighted average of ``b[:, j]`` over the
    nonzero entries of row ``i``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if semiring.pair_valued:
        out = np.zeros((a.shape[0], b.shape[1]))
        for i in range(a.shape[0]):
            nz = np.nonzero(a[i])[0]
            if nz.size == 0:
                continue
            w = a[i, nz]
            out[i] = (w[:, None] * b[nz]).sum(axis=0) / w.sum()
        return out
    out = np.full((a.shape[0], b.shape[1]), semiring.zero)
    for i in range(a.shape[0]):
        nz = np.nonzero(a[i] != semiring.zero)[0]
        if nz.size == 0:
            continue
        combined = semiring.mul(a[i, nz][:, None], b[nz])
        out[i] = semiring.add.reduce(combined, axis=0)
    return out
