"""Sparse tensor substrate.

From-scratch COO and CSR sparse matrix formats backed by NumPy arrays,
semiring algebra (Section 4.3 of the paper), segment reductions, and the
compute kernels listed in Table 2 of the paper: SpMM, SDDMM, MM, SpMMM,
MSpMM, plus the masked row softmax used by graph attention.

Two execution backends are provided for the real-semiring SpMM:

``"reference"``
    Pure NumPy gather + ``reduceat`` implementation, used as the
    correctness oracle and for non-real semirings.
``"scipy"``
    Delegates the inner product to ``scipy.sparse`` (which links against
    optimised BLAS), mirroring how the paper's implementation delegates
    to cuSPARSE/MKL.
"""

from repro.tensor.coo import COOMatrix
from repro.tensor.csr import CSRMatrix
from repro.tensor.semiring import (
    AVERAGE,
    REAL,
    TROPICAL_MAX,
    TROPICAL_MIN,
    Semiring,
)
from repro.tensor.kernels import (
    mm,
    mspmm,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    spmm,
    spmmm,
)
from repro.tensor.segment import (
    bincount_sum,
    segment_max,
    segment_mean,
    segment_min,
    segment_softmax,
    segment_sum,
)
from repro.tensor.sampling_graph import (
    Block,
    SamplingGraph,
    sample_blocks,
    sample_one_hop,
    sampling_graph_of,
)
from repro.tensor.structure import PatternStructure, lookup_structure
from repro.tensor.workspace import (
    clear_workspaces,
    set_workspace_reuse,
    workspace,
    workspace_reuse_enabled,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "Semiring",
    "REAL",
    "TROPICAL_MIN",
    "TROPICAL_MAX",
    "AVERAGE",
    "spmm",
    "sddmm_dot",
    "sddmm_add",
    "sddmm_cosine",
    "mm",
    "spmmm",
    "mspmm",
    "segment_sum",
    "segment_max",
    "segment_min",
    "segment_mean",
    "segment_softmax",
    "bincount_sum",
    "PatternStructure",
    "lookup_structure",
    "Block",
    "SamplingGraph",
    "sampling_graph_of",
    "sample_one_hop",
    "sample_blocks",
    "workspace",
    "set_workspace_reuse",
    "workspace_reuse_enabled",
    "clear_workspaces",
]
