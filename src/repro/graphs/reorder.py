"""Vertex reordering and partition load-balance diagnostics.

The 2D block distribution's balance depends entirely on vertex order:
R-MAT/Kronecker generators cluster hubs at low ids, putting most
nonzeros into block (0,0) and serialising the whole grid behind one
rank. Graph500 therefore mandates vertex scrambling, and systems like
CAGNET randomly permute inputs. This module provides the orderings and
a quantitative balance report, so the effect is measurable rather than
folkloric (see ``benchmarks/test_ablation_load_balance.py`` — the
difference is ~3x in weak-scaling efficiency on Kronecker graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.partition import block_range
from repro.tensor.coo import COOMatrix
from repro.tensor.csr import CSRMatrix
from repro.util.rng import make_rng

__all__ = [
    "permute",
    "random_order",
    "degree_sort_order",
    "scramble_if_skewed",
    "load_balance_report",
    "LoadBalanceReport",
]


def permute(
    graph: COOMatrix | CSRMatrix, order: np.ndarray
) -> COOMatrix | CSRMatrix:
    """Relabel vertices: new id of vertex ``v`` is ``order[v]``.

    ``order`` must be a permutation of ``range(n)``. Returns the same
    format as the input.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.shape[0]
    if graph.shape[0] != graph.shape[1]:
        raise ValueError("permute expects a square adjacency")
    if order.shape != (n,) or not np.array_equal(np.sort(order), np.arange(n)):
        raise ValueError("order must be a permutation of range(n)")
    was_csr = isinstance(graph, CSRMatrix)
    coo = graph.to_coo() if was_csr else graph
    out = COOMatrix(
        order[coo.rows], order[coo.cols], coo.data.copy(), shape=graph.shape
    )
    return out.to_csr() if was_csr else out


def random_order(n: int, seed: int | np.random.Generator | None = 0
                 ) -> np.ndarray:
    """A uniformly random permutation (the Graph500 scramble)."""
    return make_rng(seed).permutation(n)


def degree_sort_order(graph: COOMatrix | CSRMatrix,
                      descending: bool = True) -> np.ndarray:
    """Order vertices by degree — the *adversarial* layout for 2D blocks.

    Sorting hubs together maximises the densest block's nonzero count;
    useful as the worst-case endpoint in load-balance studies.
    """
    if isinstance(graph, CSRMatrix):
        degrees = graph.row_lengths()
    else:
        degrees = graph.row_degrees() + graph.col_degrees()
    ranks = np.argsort(-degrees if descending else degrees, kind="stable")
    order = np.empty_like(ranks)
    order[ranks] = np.arange(len(ranks))
    return order


def scramble_if_skewed(
    a: CSRMatrix,
    cv_threshold: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray | None:
    """A random order when the degree distribution warrants one.

    Reads the pattern's cached
    :meth:`~repro.tensor.structure.PatternStructure.degree_stats` and
    returns a Graph500-style scramble permutation when the row-length
    coefficient of variation exceeds ``cv_threshold`` — the regime
    where hub clustering unbalances 2D blocks (and where the megakernel
    planner likewise switches to edge-balanced sweeps). Near-regular
    graphs return ``None``: scrambling them costs cache locality for no
    balance gain.
    """
    stats = a.degree_stats()
    if stats.cv <= cv_threshold:
        return None
    return random_order(a.shape[0], seed)


@dataclass(frozen=True)
class LoadBalanceReport:
    """Nonzero distribution across the ``P x P`` grid blocks."""

    p: int
    total_nnz: int
    max_block_nnz: int
    mean_block_nnz: float
    imbalance: float  # max / mean; 1.0 is perfect

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"P={self.p}: nnz={self.total_nnz}, max block="
            f"{self.max_block_nnz}, imbalance={self.imbalance:.2f}x"
        )


def load_balance_report(a: CSRMatrix, p: int) -> LoadBalanceReport:
    """Compute block-nonzero balance for a square ``sqrt(p)``-grid.

    ``imbalance`` is the ratio the critical path pays: the slowest
    rank's edge work over the average. ``p`` must be a perfect square.
    """
    grid_dim = int(np.sqrt(p))
    if grid_dim * grid_dim != p:
        raise ValueError("p must be a perfect square")
    n = a.shape[0]
    counts = []
    for i in range(grid_dim):
        r0, r1 = block_range(n, grid_dim, i)
        for j in range(grid_dim):
            c0, c1 = block_range(n, grid_dim, j)
            counts.append(a.extract_block(r0, r1, c0, c1).nnz)
    counts_arr = np.asarray(counts)
    mean = float(counts_arr.mean()) if counts_arr.size else 0.0
    return LoadBalanceReport(
        p=p,
        total_nnz=a.nnz,
        max_block_nnz=int(counts_arr.max()) if counts_arr.size else 0,
        mean_block_nnz=mean,
        imbalance=float(counts_arr.max() / mean) if mean else 1.0,
    )
