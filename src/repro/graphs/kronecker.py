"""Graph500-style Kronecker (R-MAT) graph generator.

A vectorised reimplementation of the Graph500 Kronecker module the
artifact ships as a C shared library: each edge descends ``scale``
levels of a 2x2 probability matrix, choosing a quadrant per level. The
default initiator ``(A, B, C) = (0.57, 0.19, 0.19)`` is the Graph500
standard and produces the heavy-tail, badly load-balanced degree
distributions the paper's strong-scaling experiments rely on.

The artifact notes two post-processing steps, both applied here:
duplicate edges are removed, and every vertex is connected to at least
one other vertex. As in the artifact, the vertex count is rounded down
to a power of two.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.prep import ensure_min_degree
from repro.tensor.coo import COOMatrix
from repro.util.rng import make_rng

__all__ = ["kronecker"]

#: Graph500 initiator probabilities.
INITIATOR = (0.57, 0.19, 0.19)


def kronecker(
    n: int,
    m: int,
    seed: int | np.random.Generator | None = 0,
    initiator: tuple[float, float, float] = INITIATOR,
    symmetrize: bool = True,
    ensure_connected: bool = True,
    scramble: bool = True,
) -> COOMatrix:
    """Generate a Kronecker graph with ~``m`` distinct edges.

    Parameters
    ----------
    n:
        Requested vertex count; rounded down to the nearest power of
        two (the generator recursion requires it, as in the artifact).
    m:
        Number of edge samples drawn. After deduplication the distinct
        edge count is somewhat smaller — the same semantics as the
        artifact's ``--edges`` flag.
    seed:
        RNG seed.
    initiator:
        The (A, B, C) quadrant probabilities; D = 1 - A - B - C.
    symmetrize:
        Mirror edges to model an undirected graph (GNN datasets are
        predominantly undirected, Section 5.2).
    ensure_connected:
        Attach every isolated vertex to a random neighbour.
    scramble:
        Apply the Graph500-mandated random vertex permutation. The
        R-MAT recursion clusters hubs at low vertex ids; scrambling
        removes the id-locality while preserving the heavy-tail degree
        distribution, exactly as the Graph500 Kronecker module does.

    Returns
    -------
    A canonical :class:`~repro.tensor.coo.COOMatrix` adjacency pattern
    (binary values, no self loops).
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    if m < 1:
        raise ValueError("need at least one edge sample")
    rng = make_rng(seed)
    scale = int(np.floor(np.log2(n)))
    n = 1 << scale

    a, b, c = initiator
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("initiator probabilities exceed 1")

    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # Descend the recursion level by level, fully vectorised over edges.
    for _level in range(scale):
        r = rng.random(m)
        right = (r >= a) & (r < a + b)          # quadrant B: col bit set
        lower = (r >= a + b) & (r < a + b + c)  # quadrant C: row bit set
        both = r >= a + b + c                   # quadrant D: both bits
        rows <<= 1
        cols <<= 1
        rows += (lower | both).astype(np.int64)
        cols += (right | both).astype(np.int64)

    if scramble:
        permutation = rng.permutation(n)
        rows = permutation[rows]
        cols = permutation[cols]

    coo = COOMatrix(rows, cols, None, shape=(n, n)).remove_self_loops()
    coo.data[:] = 1  # dedup may have summed duplicates; reset to pattern
    if symmetrize:
        coo = coo.symmetrize()
    if ensure_connected:
        coo = ensure_min_degree(coo, rng=rng, symmetric=symmetrize)
    return coo
