"""Power-law (Chung–Lu) graphs — the MAKG substitute.

The paper's large-real-world experiments run on the Microsoft Academic
Knowledge Graph (111M vertices, 3.2B edges), which is not available
offline. Per DESIGN.md, we substitute a Chung–Lu random graph with a
power-law expected-degree sequence: what the MAKG experiments probe is
scaling behaviour under a heavy-tail degree distribution at a given
density, and Chung–Lu reproduces exactly that skew with a controllable
exponent. :func:`makg_like` pins the exponent and density to
citation-network-like values.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.prep import ensure_min_degree
from repro.tensor.coo import COOMatrix
from repro.util.rng import make_rng

__all__ = ["powerlaw_graph", "makg_like"]


def powerlaw_graph(
    n: int,
    m: int,
    exponent: float = 2.2,
    seed: int | np.random.Generator | None = 0,
    symmetrize: bool = True,
    ensure_connected: bool = True,
) -> COOMatrix:
    """Chung–Lu graph with ~``m`` edge samples and power-law degrees.

    Expected degrees follow ``w_i ∝ (i + i0)^(-1/(exponent-1))``; both
    endpoints of every edge are drawn proportionally to ``w``, which
    realises expected degree ``w_i * (2m / sum w)`` per vertex — the
    standard Chung–Lu construction.
    """
    if n < 2 or m < 1:
        raise ValueError("need n >= 2 and m >= 1")
    if exponent <= 1.0:
        raise ValueError("power-law exponent must exceed 1")
    rng = make_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    prob = weights / weights.sum()
    rows = rng.choice(n, size=m, p=prob).astype(np.int64)
    cols = rng.choice(n, size=m, p=prob).astype(np.int64)
    keep = rows != cols
    coo = COOMatrix(rows[keep], cols[keep], None, shape=(n, n))
    coo.data[:] = 1
    if symmetrize:
        coo = coo.symmetrize()
    if ensure_connected:
        coo = ensure_min_degree(coo, rng=rng, symmetric=symmetrize)
    return coo


def makg_like(
    n: int = 1 << 14,
    seed: int | np.random.Generator | None = 0,
) -> COOMatrix:
    """A scaled-down MAKG stand-in.

    MAKG has ~111M vertices and ~3.2B directed edges — roughly 29 edges
    per vertex and a citation-like power-law tail. This helper keeps
    the 29x edge multiplier and an exponent of 2.1 while shrinking
    ``n`` to the simulated-cluster scale.
    """
    return powerlaw_graph(n, 29 * n, exponent=2.1, seed=seed)
