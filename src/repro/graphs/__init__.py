"""Graph generators, IO and preprocessing.

The paper's evaluation uses three dataset families (artifact B0–B2):

* **Kronecker graphs** (B0) — Graph500-style R-MAT generator with
  heavy-tail skew, deduplication and minimum-degree repair.
* **MAKG** (B1) — a 111M-vertex real-world graph; substituted here by a
  power-law (Chung–Lu) synthetic with matching skew, see DESIGN.md.
* **Erdős–Rényi graphs** (B2) — random uniform degree distribution,
  used to verify the communication-volume analysis of Section 7.3.

COO ``.npz`` loading/saving matches the artifact's file format.
"""

from repro.graphs.erdos_renyi import erdos_renyi
from repro.graphs.io import load_npz, save_npz
from repro.graphs.kronecker import kronecker
from repro.graphs.powerlaw import makg_like, powerlaw_graph
from repro.graphs.prep import (
    density,
    ensure_min_degree,
    graph_stats,
    prepare_adjacency,
)
from repro.graphs.reorder import (
    degree_sort_order,
    load_balance_report,
    permute,
    random_order,
)
from repro.graphs.datasets import synthetic_classification

__all__ = [
    "kronecker",
    "erdos_renyi",
    "powerlaw_graph",
    "makg_like",
    "load_npz",
    "save_npz",
    "prepare_adjacency",
    "ensure_min_degree",
    "density",
    "graph_stats",
    "synthetic_classification",
    "permute",
    "random_order",
    "degree_sort_order",
    "load_balance_report",
]
