"""COO adjacency IO in the artifact's compressed-NumPy format.

The artifact loads adjacency matrices "in the COO format stored in the
compressed numpy (.npz) file format"; these helpers write and read that
layout (``row``, ``col``, ``data``, ``shape`` arrays).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.tensor.coo import COOMatrix

__all__ = ["save_npz", "load_npz"]


def save_npz(path: str | Path, coo: COOMatrix) -> None:
    """Write a COO matrix to ``path`` (compressed npz)."""
    np.savez_compressed(
        Path(path),
        row=coo.rows,
        col=coo.cols,
        data=coo.data,
        shape=np.asarray(coo.shape, dtype=np.int64),
    )


def load_npz(path: str | Path) -> COOMatrix:
    """Read a COO matrix previously written by :func:`save_npz`.

    The vertex and edge counts come from the file itself — matching
    the artifact's behaviour where ``--vertices``/``--edges`` are
    ignored when ``--file`` is given.
    """
    with np.load(Path(path)) as blob:
        missing = {"row", "col", "data", "shape"} - set(blob.files)
        if missing:
            raise ValueError(f"npz file missing arrays: {sorted(missing)}")
        shape = tuple(int(x) for x in blob["shape"])
        return COOMatrix(blob["row"], blob["col"], blob["data"], shape=shape)
