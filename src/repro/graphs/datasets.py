"""Synthetic labelled datasets for end-to-end training demonstrations.

The paper benchmarks runtime, with features and weights "generated
randomly"; examples and integration tests additionally need a task the
models can actually *learn*, so this module provides a planted-partition
(stochastic block model) node-classification dataset: vertices belong
to classes, intra-class edges are more likely than inter-class ones,
and features are noisy class prototypes. Attention models separate the
classes easily, which makes convergence assertions meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.prep import ensure_min_degree, prepare_adjacency
from repro.tensor.coo import COOMatrix
from repro.tensor.csr import CSRMatrix
from repro.util.rng import make_rng

__all__ = ["NodeClassificationData", "synthetic_classification"]


@dataclass
class NodeClassificationData:
    """A ready-to-train node-classification problem."""

    adjacency: CSRMatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    num_classes: int


def synthetic_classification(
    n: int = 512,
    num_classes: int = 4,
    feature_dim: int = 16,
    mean_degree: float = 8.0,
    homophily: float = 0.8,
    noise: float = 1.0,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> NodeClassificationData:
    """Generate a stochastic-block-model classification dataset.

    Parameters
    ----------
    n, num_classes, feature_dim:
        Problem dimensions.
    mean_degree:
        Expected (directed) degree before symmetrisation.
    homophily:
        Fraction of edges that connect same-class vertices.
    noise:
        Standard deviation of Gaussian feature noise around the class
        prototype.
    train_fraction, val_fraction:
        Random split fractions; the remainder is the test set.
    """
    if not 0 < homophily <= 1:
        raise ValueError("homophily must be in (0, 1]")
    rng = make_rng(seed)
    labels = rng.integers(0, num_classes, n, dtype=np.int64)

    m = int(n * mean_degree)
    src = rng.integers(0, n, m, dtype=np.int64)
    same_class = rng.random(m) < homophily
    dst = np.empty(m, dtype=np.int64)
    # Homophilous edges: pick a random vertex of the same class.
    by_class = [np.flatnonzero(labels == c) for c in range(num_classes)]
    for c in range(num_classes):
        members = by_class[c]
        take = same_class & (labels[src] == c)
        if members.size and take.any():
            dst[take] = members[rng.integers(0, members.size, int(take.sum()))]
    # Heterophilous edges: uniform random endpoint.
    rest = ~same_class
    dst[rest] = rng.integers(0, n, int(rest.sum()), dtype=np.int64)
    # Same-class slots that found no members fall back to uniform.
    unfilled = same_class & (dst == 0) & (labels[src] != labels[0])
    dst[unfilled] = rng.integers(0, n, int(unfilled.sum()), dtype=np.int64)

    coo = COOMatrix(src, dst, None, shape=(n, n)).remove_self_loops()
    coo.data[:] = 1
    coo = ensure_min_degree(coo.symmetrize(), rng=rng)
    adjacency = prepare_adjacency(coo)

    prototypes = rng.normal(0, 1, (num_classes, feature_dim))
    features = (
        prototypes[labels] + noise * rng.normal(0, 1, (n, feature_dim))
    ).astype(np.float32)

    order = rng.permutation(n)
    n_train = int(train_fraction * n)
    n_val = int(val_fraction * n)
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True

    return NodeClassificationData(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        num_classes=num_classes,
    )
