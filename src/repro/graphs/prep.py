"""Graph preprocessing: repairs, statistics, model-ready adjacency.

Mirrors the artifact's post-generation pipeline (dedup happens in
:class:`~repro.tensor.coo.COOMatrix`; isolated-vertex repair and the
attention-ready self-loop/normalisation steps live here) plus the
statistics that the theory predictors of Section 7 consume (maximum
degree ``d``, density ``rho = m / n^2``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.coo import COOMatrix
from repro.tensor.csr import CSRMatrix
from repro.util.rng import make_rng

__all__ = [
    "ensure_min_degree",
    "prepare_adjacency",
    "density",
    "graph_stats",
    "GraphStats",
]


def ensure_min_degree(
    coo: COOMatrix,
    rng: int | np.random.Generator | None = 0,
    symmetric: bool = True,
) -> COOMatrix:
    """Attach every isolated vertex to a random other vertex.

    The artifact: the generated graph "is further processed ... by
    ensuring that each vertex is connected to at least one other
    vertex". A vertex is isolated when it has neither out- nor
    in-edges; the repair edge avoids self loops and is mirrored when
    ``symmetric``.
    """
    rng = make_rng(rng)
    n = coo.shape[0]
    if n < 2:
        return coo
    deg = coo.row_degrees() + coo.col_degrees()
    isolated = np.flatnonzero(deg == 0)
    if isolated.size == 0:
        return coo
    partners = rng.integers(0, n - 1, isolated.size, dtype=np.int64)
    # Shift partners at-or-after the isolated vertex by one to skip it.
    partners += (partners >= isolated).astype(np.int64)
    rows = [coo.rows, isolated]
    cols = [coo.cols, partners]
    if symmetric:
        rows.append(partners)
        cols.append(isolated)
    out = COOMatrix(
        np.concatenate(rows), np.concatenate(cols), None, shape=coo.shape,
        dtype=coo.dtype,
    )
    out.data[:] = 1
    return out


def prepare_adjacency(
    coo: COOMatrix,
    self_loops: bool = True,
    dtype: np.dtype | type = np.float32,
) -> CSRMatrix:
    """Produce the attention-ready adjacency CSR.

    A-GNNs attend over :math:`\\widehat{N}(v) = N(v) \\cup \\{v\\}`, so
    the pattern gets the full diagonal by default; values are binary.
    """
    if self_loops:
        coo = coo.add_self_loops()
    csr = coo.to_csr()
    return csr.with_data(np.ones(csr.nnz, dtype=dtype))


def density(coo_or_csr) -> float:
    """Adjacency density :math:`\\rho = m / n^2` (the paper's sweep knob)."""
    n_r, n_c = coo_or_csr.shape
    if n_r == 0 or n_c == 0:
        return 0.0
    return coo_or_csr.nnz / (n_r * n_c)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics consumed by the Section-7 volume predictors."""

    n: int
    m: int
    density: float
    max_degree: int
    mean_degree: float
    isolated: int


def graph_stats(csr: CSRMatrix) -> GraphStats:
    """Compute :class:`GraphStats` for a (square) adjacency matrix."""
    deg = csr.row_lengths()
    return GraphStats(
        n=csr.shape[0],
        m=csr.nnz,
        density=density(csr),
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=float(deg.mean()) if deg.size else 0.0,
        isolated=int(np.sum(deg == 0)),
    )
