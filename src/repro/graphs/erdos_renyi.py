"""Erdős–Rényi (random uniform degree distribution) graphs.

These are the artifact's B2 datasets, used in the paper to verify the
communication-volume analysis of Section 7.3: every edge exists with a
constant probability ``q``, independently, giving excellent load
balance. The generator samples edge endpoints directly (O(m) memory,
never O(n^2)), so densities of 1%/0.1%/0.01% at the evaluation sizes
are all cheap to produce.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.prep import ensure_min_degree
from repro.tensor.coo import COOMatrix
from repro.util.rng import make_rng

__all__ = ["erdos_renyi"]


def erdos_renyi(
    n: int,
    m: int | None = None,
    q: float | None = None,
    seed: int | np.random.Generator | None = 0,
    symmetrize: bool = True,
    ensure_connected: bool = True,
    max_rounds: int = 64,
) -> COOMatrix:
    """Generate a G(n, q)-style graph with ~``m`` distinct edges.

    Exactly one of ``m`` (target edge count) or ``q`` (edge
    probability, with ``m = q * n^2``) must be given — the artifact's
    ``--edges`` flag corresponds to ``m``. Endpoints are drawn
    uniformly, deduplicated, and topped up over a few rounds so the
    final distinct count is close to the target.
    """
    if (m is None) == (q is None):
        raise ValueError("give exactly one of m or q")
    if q is not None:
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        m = int(round(q * n * n))
    if m < 1:
        raise ValueError("target edge count must be positive")
    if m > n * (n - 1):
        raise ValueError("more edges requested than loop-free pairs exist")
    rng = make_rng(seed)

    rows = np.empty(0, dtype=np.int64)
    cols = np.empty(0, dtype=np.int64)
    target = m
    # Top-up loop: duplicates and self loops shrink each draw, so draw
    # slightly more than missing and repeat until close to target.
    for _round in range(max_rounds):
        missing = target - rows.shape[0]
        if missing <= 0:
            break
        draw = int(missing * 1.1) + 16
        r = rng.integers(0, n, draw, dtype=np.int64)
        c = rng.integers(0, n, draw, dtype=np.int64)
        keep = r != c
        rows = np.concatenate([rows, r[keep]])
        cols = np.concatenate([cols, c[keep]])
        # Deduplicate across rounds.
        key = rows * np.int64(n) + cols
        _, unique_index = np.unique(key, return_index=True)
        rows = rows[unique_index]
        cols = cols[unique_index]
    if rows.shape[0] > target:
        rows = rows[:target]
        cols = cols[:target]

    coo = COOMatrix(rows, cols, None, shape=(n, n))
    coo.data[:] = 1
    if symmetrize:
        coo = coo.symmetrize()
    if ensure_connected:
        coo = ensure_min_degree(coo, rng=rng, symmetric=symmetrize)
    return coo
