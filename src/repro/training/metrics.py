"""Evaluation metrics for node-level tasks."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "f1_macro"]


def accuracy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Fraction of (masked) vertices whose argmax matches the label."""
    pred = np.asarray(logits).argmax(axis=1)
    labels = np.asarray(labels)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        pred, labels = pred[mask], labels[mask]
    if labels.size == 0:
        return 0.0
    return float((pred == labels).mean())


def f1_macro(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Unweighted mean of per-class F1 scores over the present classes."""
    pred = np.asarray(logits).argmax(axis=1)
    labels = np.asarray(labels)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        pred, labels = pred[mask], labels[mask]
    if labels.size == 0:
        return 0.0
    scores = []
    for cls in np.unique(labels):
        tp = np.sum((pred == cls) & (labels == cls))
        fp = np.sum((pred == cls) & (labels != cls))
        fn = np.sum((pred != cls) & (labels == cls))
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(scores))
