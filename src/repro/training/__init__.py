"""Training stack: losses, optimisers, trainers, metrics.

The paper evaluates *full-batch* training (a forward pass followed by a
backward pass over the whole graph, per iteration); this package
provides the loss bootstraps of Eq. (4), classic first-order optimisers
applying the Step-6 update rule, and a trainer driving the loop. For
graphs beyond the full-batch memory ceiling,
:mod:`repro.training.minibatch` drives the same models over sampled
layered blocks instead (optionally pipelined across fabric ranks).
"""

from repro.training.loss import MSELoss, SoftmaxCrossEntropyLoss
from repro.training.metrics import accuracy, f1_macro
from repro.training.minibatch import (
    MinibatchResult,
    MinibatchTrainer,
    minibatch_train_pipelined,
    train_step,
)
from repro.training.optim import SGD, Adam, Optimizer
from repro.training.trainer import TrainResult, Trainer

__all__ = [
    "SoftmaxCrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainResult",
    "MinibatchTrainer",
    "MinibatchResult",
    "minibatch_train_pipelined",
    "train_step",
    "accuracy",
    "f1_macro",
]
