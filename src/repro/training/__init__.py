"""Full-batch training stack: losses, optimisers, trainer, metrics.

The paper evaluates *full-batch* training (a forward pass followed by a
backward pass over the whole graph, per iteration); this package
provides the loss bootstraps of Eq. (4), classic first-order optimisers
applying the Step-6 update rule, and a trainer driving the loop.
"""

from repro.training.loss import MSELoss, SoftmaxCrossEntropyLoss
from repro.training.metrics import accuracy, f1_macro
from repro.training.optim import SGD, Adam, Optimizer
from repro.training.trainer import TrainResult, Trainer

__all__ = [
    "SoftmaxCrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainResult",
    "accuracy",
    "f1_macro",
]
