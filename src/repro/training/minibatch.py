"""Sampled mini-batch training engine over layered blocks.

The full-batch :class:`~repro.training.trainer.Trainer` holds every
layer's activations for the whole graph — the memory ceiling the paper
concedes to DistDGL. This module lifts it: training runs on
fan-out-limited mini-batches sampled by
:mod:`repro.tensor.sampling_graph`, so the working set per step is
bounded by the fan-out budget instead of the graph.

Three entry points:

* :class:`MinibatchTrainer` — the serial loop: per epoch, shuffle the
  target vertices, sample layered blocks per batch, run
  forward/backward through the *unchanged* model layers (hand-fused,
  ``DagLayer``-derived, fused-megakernel — blocks are square CSR
  matrices, so every execution path applies as-is), step the
  optimiser, and optionally evaluate on the full graph.
* :func:`train_step` — one batch's forward/backward/update, shared by
  the serial loop and the pipelined trainer rank so both are the same
  arithmetic, statement for statement.
* :func:`minibatch_train_pipelined` — a two-rank sampler/trainer split
  over the process fabric: rank 0 samples batch ``i + 1`` while rank 1
  trains batch ``i``, pushing serialised blocks through
  ``isend``/``irecv`` handles. Block traffic is attributed to the
  ``sample`` phase of :class:`~repro.runtime.stats.CommStats`; the
  overlapped and rendezvous modes send identical bytes under identical
  phases, so ``by_phase`` is bit-identical and only ``wait_s`` moves —
  the same invariant the 1.5D overlap schedules keep.

Bit-identity contract (tested per model in
``tests/test_minibatch.py``): with ``fanout >= max degree`` and one
batch covering every vertex, the sampled loop reproduces the
full-batch trainer's loss curve and final weights *bit-for-bit* —
sampling only reorders nothing, computes nothing differently, and the
compaction map is the identity. The pipelined split reproduces the
serial loop bit-for-bit in turn (same RNG stream on the sampler rank,
same arithmetic on the trainer rank).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.models import build_model
from repro.models.base import GnnModel, Loss
from repro.obs.tracer import tracer
from repro.runtime.communicator import Communicator
from repro.runtime.executor import run_spmd
from repro.runtime.stats import RunStats
from repro.tensor.csr import CSRMatrix
from repro.tensor.sampling_graph import Block, sample_blocks
from repro.training.loss import SoftmaxCrossEntropyLoss
from repro.training.metrics import accuracy
from repro.training.optim import SGD, Adam, Optimizer
from repro.training.trainer import TrainResult
from repro.util.counters import FlopCounter, null_counter
from repro.util.rng import make_rng, repro_seed_default

__all__ = [
    "MinibatchResult",
    "MinibatchTrainer",
    "train_step",
    "forward_blocks",
    "backward_blocks",
    "minibatch_train_pipelined",
    "pipeline_overlap_default",
    "PIPELINE_ENV_VAR",
]

#: Environment variable giving the default for the pipelined split's
#: ``overlap=`` argument (same boolean spelling as ``$REPRO_FUSION``).
PIPELINE_ENV_VAR = "REPRO_PIPELINE"


def pipeline_overlap_default() -> bool:
    """Resolve the pipelined-overlap default from ``$REPRO_PIPELINE``.

    Read at call time; unset means overlapped (the pipeline exists to
    overlap sampling with compute — the rendezvous mode is the parity
    oracle, selected explicitly or via ``REPRO_PIPELINE=0``).
    """
    raw = os.environ.get(PIPELINE_ENV_VAR)
    if raw is None:
        return True
    value = raw.strip().lower()
    if value in ("1", "true", "on", "yes"):
        return True
    if value in ("0", "false", "off", "no", ""):
        return False
    raise ValueError(
        f"invalid ${PIPELINE_ENV_VAR}={raw!r}; "
        "use one of 1/0, true/false, on/off, yes/no"
    )


# ----------------------------------------------------------------------
# One batch: forward / backward / update over layered blocks
# ----------------------------------------------------------------------
def forward_blocks(
    model: GnnModel,
    blocks: list[Block],
    h0: np.ndarray,
    counter: FlopCounter = null_counter(),
    training: bool = True,
) -> tuple[np.ndarray, list]:
    """Run the model layer-by-layer over its blocks.

    ``h0`` holds the input features of ``blocks[0].src_nodes``. Each
    layer consumes its block's source rows and the slice
    ``z[dst_positions]`` feeds the next layer (destination vertices are
    the next block's sources by the sampling contract). Returns the
    final destination outputs and the per-layer training caches.
    """
    if len(blocks) != model.num_layers:
        raise ValueError(
            f"got {len(blocks)} blocks for {model.num_layers} layers; "
            "sample with one fan-out per layer"
        )
    caches: list = []
    h = h0
    for layer, block in zip(model.layers, blocks):
        if h.shape[0] != block.num_src:
            raise ValueError(
                "feature rows do not match the block's source set"
            )
        h, cache = layer.forward(
            block.matrix, h, counter=counter, training=training
        )
        caches.append(cache)
        h = h[block.dst_positions]
    return h, caches


def backward_blocks(
    model: GnnModel,
    blocks: list[Block],
    caches: list,
    d_out: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> list[dict[str, np.ndarray]]:
    """Error chaining (Eq. 4/6) through the sampled blocks.

    ``d_out`` is the loss gradient over the last block's destination
    rows; each hop scatters its destination gradient into the block's
    source frame (zeros on non-destination rows — those rows produced
    nothing, so nothing flows back through them), masks with
    :math:`\\sigma'` exactly as the full-batch model does, and the
    layer's input-feature gradient is already aligned with the previous
    block's destination rows.
    """
    grads: list = [None] * model.num_layers
    gamma_dst = d_out
    for index in range(model.num_layers - 1, -1, -1):
        layer = model.layers[index]
        block = blocks[index]
        cache = caches[index]
        gamma = np.zeros(
            (block.num_src,) + gamma_dst.shape[1:], dtype=gamma_dst.dtype
        )
        gamma[block.dst_positions] = gamma_dst
        g = gamma * layer.activation.grad(cache.z)
        gamma_dst, layer_grads = layer.backward(cache, g, counter=counter)
        grads[index] = layer_grads
    return grads


def train_step(
    model: GnnModel,
    loss: Loss,
    optimizer: Optimizer,
    blocks: list[Block],
    features: np.ndarray,
    labels: np.ndarray,
    counter: FlopCounter = null_counter(),
) -> float:
    """One sampled training step; returns the batch loss.

    Features and labels are gathered locally (``features`` is the
    *full* feature matrix; only the sampled source rows are touched),
    which mirrors a rank-local feature store.
    """
    with tracer().span(
        "minibatch.train_step", counter=counter,
        batch_size=int(blocks[-1].dst_nodes.shape[0]),
    ):
        h0 = np.ascontiguousarray(features[blocks[0].src_nodes])
        out, caches = forward_blocks(model, blocks, h0, counter=counter)
        y = labels[blocks[-1].dst_nodes]
        value = loss.value(out, y)
        grads = backward_blocks(
            model, blocks, caches, loss.gradient(out, y), counter=counter
        )
        optimizer.step(model, grads)
    return value


# ----------------------------------------------------------------------
# Serial loop
# ----------------------------------------------------------------------
@dataclass
class MinibatchResult(TrainResult):
    """Per-epoch history plus the flat per-batch loss trace."""

    batch_losses: list[float] = field(default_factory=list)
    sampled_edges: int = 0


class MinibatchTrainer:
    """Drives sampled mini-batch training of an *unchanged* model.

    Parameters
    ----------
    model, loss, optimizer:
        Exactly the full-batch trainer's ingredients. The loss must be
        unmasked: sampled training selects labelled vertices by
        passing them as ``targets`` instead.
    fanouts:
        Per-layer neighbour fan-outs (length must equal the model
        depth); ``None`` entries take every neighbour.
    batch_size:
        Target vertices per step.
    shuffle:
        Permute the target order each epoch (disable for the
        bit-identity parity against the full-batch loop).
    seed:
        Sampling/shuffle seed; ``None`` resolves ``$REPRO_SEED``
        (default 0). Each :meth:`fit` call restarts the stream, so a
        run is reproducible from its arguments alone.
    """

    def __init__(
        self,
        model: GnnModel,
        loss: Loss,
        optimizer: Optimizer,
        fanouts: tuple[int | None, ...],
        batch_size: int = 1024,
        shuffle: bool = True,
        seed: int | None = None,
    ) -> None:
        fanouts = tuple(fanouts)
        if len(fanouts) != model.num_layers:
            raise ValueError(
                f"{len(fanouts)} fan-outs for a {model.num_layers}-layer "
                "model; need one per layer"
            )
        if any(f is not None and int(f) < 0 for f in fanouts):
            raise ValueError("fan-outs must be >= 0 (or None for all)")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if getattr(loss, "mask", None) is not None:
            raise ValueError(
                "sampled training selects labelled vertices via targets; "
                "use an unmasked loss"
            )
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.fanouts = fanouts
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.seed = repro_seed_default() if seed is None else int(seed)

    # ------------------------------------------------------------------
    def fit(
        self,
        a: CSRMatrix,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 1,
        targets: np.ndarray | None = None,
        val_mask: np.ndarray | None = None,
        full_eval: bool = True,
        counter: FlopCounter = null_counter(),
        verbose: bool = False,
    ) -> MinibatchResult:
        """Train for ``epochs`` passes over the (shuffled) targets.

        ``targets`` may be vertex ids or a boolean mask (defaults to
        every vertex). ``full_eval`` runs a cache-free *full-graph*
        forward after each epoch for train/val accuracy — the standard
        sampled-training protocol (sample to train, full graph to
        evaluate); disable it on graphs beyond the full-batch ceiling.
        """
        targets = _as_target_ids(targets, a.shape[0])
        rng = make_rng(self.seed)
        result = MinibatchResult()
        classification = np.asarray(labels).ndim == 1
        for epoch in range(epochs):
            with tracer().span("minibatch.epoch", counter=counter, epoch=epoch):
                order = rng.permutation(targets) if self.shuffle else targets
                epoch_losses: list[float] = []
                for start in range(0, order.shape[0], self.batch_size):
                    batch = order[start : start + self.batch_size]
                    with tracer().span(
                        "minibatch.sample", vertices=int(batch.shape[0])
                    ):
                        blocks = sample_blocks(a, batch, self.fanouts, rng)
                    value = train_step(
                        self.model, self.loss, self.optimizer, blocks,
                        features, labels, counter=counter,
                    )
                    result.sampled_edges += sum(
                        b.sampled_edges for b in blocks
                    )
                    epoch_losses.append(value)
            result.batch_losses.extend(epoch_losses)
            result.losses.append(
                float(sum(epoch_losses) / max(len(epoch_losses), 1))
            )
            if full_eval and classification:
                out = self.model.forward(a, features, training=False)
                result.train_accuracies.append(
                    accuracy(out, labels, _as_mask(targets, a.shape[0]))
                )
                if val_mask is not None:
                    result.val_accuracies.append(
                        accuracy(out, labels, val_mask)
                    )
            elif full_eval:
                result.train_accuracies.append(float("nan"))
                if val_mask is not None:
                    result.val_accuracies.append(float("nan"))
            if verbose:  # pragma: no cover - logging aid
                print(
                    f"epoch {epoch:4d}  loss {result.losses[-1]:.4f}  "
                    f"batches {len(epoch_losses)}"
                )
        self.model.zero_caches()
        return result

    # ------------------------------------------------------------------
    def evaluate(
        self,
        a: CSRMatrix,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> float:
        """Full-graph inference-mode accuracy on ``mask``."""
        out = self.model.forward(a, features, training=False)
        return accuracy(out, labels, mask)

    # ------------------------------------------------------------------
    def predict(
        self,
        a: CSRMatrix,
        features: np.ndarray,
        targets: np.ndarray,
        seed: int | None = None,
    ) -> np.ndarray:
        """Sampled inference: outputs for ``targets`` only.

        Uses the trainer's fan-outs; with full fan-outs this equals the
        full-batch forward rows bit-for-bit (the ego-graph serving
        path's building block).
        """
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        rng = make_rng(self.seed if seed is None else seed)
        blocks = sample_blocks(a, targets, self.fanouts, rng)
        h0 = np.ascontiguousarray(features[blocks[0].src_nodes])
        out, _ = forward_blocks(
            self.model, blocks, h0, training=False
        )
        return out


def _as_target_ids(targets, n: int) -> np.ndarray:
    if targets is None:
        return np.arange(n, dtype=np.int64)
    targets = np.asarray(targets)
    if targets.dtype == bool:
        if targets.shape != (n,):
            raise ValueError("boolean target mask must have length n")
        return np.flatnonzero(targets).astype(np.int64)
    return np.unique(targets.astype(np.int64))


def _as_mask(ids: np.ndarray, n: int) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[ids] = True
    return mask


# ----------------------------------------------------------------------
# Pipelined sampler/trainer split
# ----------------------------------------------------------------------
_SAMPLER_RANK = 0
_TRAINER_RANK = 1


def _pipeline_batches(
    spec: dict, n: int
) -> tuple[np.ndarray, int]:
    """Deterministic target set and per-epoch batch count."""
    targets = _as_target_ids(spec.get("targets"), n)
    per_epoch = -(-targets.shape[0] // spec["batch_size"])
    return targets, per_epoch


def _pipeline_program(
    comm: Communicator,
    adj: tuple,
    features: np.ndarray,
    labels: np.ndarray,
    spec: dict,
):
    """SPMD body of the sampler/trainer split (module-level: picklable).

    Rank 0 samples and pushes serialised blocks under the ``sample``
    phase; rank 1 rebuilds them and runs :func:`train_step`. In
    overlapped mode the trainer posts the next batch's ``irecv``
    before computing the current one and the sampler uses ``isend`` —
    message content, order, tags and phases are identical to the
    rendezvous mode, so ``CommStats.by_phase`` matches bit-for-bit.
    """
    indptr, indices, data, n = adj
    a = CSRMatrix(indptr, indices, data, (n, n))
    targets, per_epoch = _pipeline_batches(spec, n)
    epochs = spec["epochs"]
    total = epochs * per_epoch
    overlap = spec["overlap"]
    fanouts = spec["fanouts"]
    batch_size = spec["batch_size"]

    if comm.rank == _SAMPLER_RANK:
        rng = make_rng(spec["seed"])
        comm.stats.set_phase("sample")
        t = tracer()
        handles = []
        i = 0
        for _epoch in range(epochs):
            order = rng.permutation(targets) if spec["shuffle"] else targets
            for start in range(0, order.shape[0], batch_size):
                batch = order[start : start + batch_size]
                with t.span("pipeline.sample", batch=i):
                    blocks = sample_blocks(a, batch, fanouts, rng)
                    payload = [b.to_payload() for b in blocks]
                with t.span("pipeline.send", batch=i):
                    if overlap:
                        handles.append(
                            comm.isend(payload, _TRAINER_RANK, tag=("mb", i))
                        )
                    else:
                        comm.send(payload, _TRAINER_RANK, tag=("mb", i))
                i += 1
        with t.span("pipeline.flush"):
            for handle in handles:
                handle.wait()
        return None

    model = build_model(
        spec["model"], features.shape[1], spec["hidden_dim"],
        spec["out_dim"], num_layers=spec["num_layers"],
        seed=spec["model_seed"], dtype=spec["dtype"],
    )
    loss = SoftmaxCrossEntropyLoss()
    optimizer = _build_optimizer(spec)
    losses: list[float] = []
    comm.stats.set_phase("compute")
    t = tracer()
    pending = None
    if overlap and total:
        pending = comm.irecv(_SAMPLER_RANK, tag=("mb", 0))
    for i in range(total):
        with t.span("pipeline.recv", batch=i):
            if overlap:
                payload = pending.wait()
                if i + 1 < total:
                    # Post the next receive *before* computing this
                    # batch: the transfer of batch i+1 (and the
                    # sampler's work on it) proceeds while train_step
                    # runs.
                    pending = comm.irecv(_SAMPLER_RANK, tag=("mb", i + 1))
            else:
                payload = comm.recv(_SAMPLER_RANK, tag=("mb", i))
        blocks = [Block.from_payload(p) for p in payload]
        losses.append(
            train_step(
                model, loss, optimizer, blocks, features, labels,
                counter=comm.stats.flops,
            )
        )
    model.zero_caches()
    return losses


def _build_optimizer(spec: dict) -> Optimizer:
    kind = spec.get("optimizer", "sgd")
    if kind == "sgd":
        return SGD(lr=spec["lr"])
    if kind == "adam":
        return Adam(lr=spec["lr"])
    raise ValueError(f"unknown optimizer {kind!r}")


def minibatch_train_pipelined(
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    fanouts: tuple[int | None, ...],
    num_layers: int = 3,
    batch_size: int = 1024,
    epochs: int = 1,
    lr: float = 0.01,
    optimizer: str = "sgd",
    targets: np.ndarray | None = None,
    shuffle: bool = True,
    seed: int | None = None,
    model_seed: int = 0,
    dtype: np.dtype | type = np.float32,
    overlap: bool | None = None,
    backend: str | None = None,
    timeout: float = 120.0,
) -> tuple[list[float], RunStats]:
    """Two-rank pipelined sampled training; returns (batch losses, stats).

    Rank 0 is the sampler, rank 1 the trainer; ``overlap=None``
    consults ``$REPRO_PIPELINE`` (default on). The result is
    bit-identical to :class:`MinibatchTrainer` with the same spec —
    the split moves *where* sampling runs, not what it computes.
    """
    if len(tuple(fanouts)) != num_layers:
        raise ValueError("need one fan-out per layer")
    spec = {
        "model": model_name,
        "hidden_dim": int(hidden_dim),
        "out_dim": int(out_dim),
        "num_layers": int(num_layers),
        "fanouts": tuple(fanouts),
        "batch_size": int(batch_size),
        "epochs": int(epochs),
        "lr": float(lr),
        "optimizer": optimizer,
        "targets": None if targets is None else np.asarray(targets),
        "shuffle": bool(shuffle),
        "seed": repro_seed_default() if seed is None else int(seed),
        "model_seed": int(model_seed),
        "dtype": np.dtype(dtype).type,
        "overlap": (
            pipeline_overlap_default() if overlap is None else bool(overlap)
        ),
    }
    adj = (a.indptr, a.indices, a.data, a.shape[0])
    result = run_spmd(
        2, _pipeline_program, timeout=timeout, backend=backend,
        adj=adj, features=np.ascontiguousarray(features),
        labels=np.ascontiguousarray(labels), spec=spec,
    )
    return result.values[_TRAINER_RANK], result.stats
