"""First-order optimisers applying the Step-6 weight update.

Optimisers operate on the nested per-layer gradient structure returned
by :meth:`repro.models.base.GnnModel.backward` and update parameters in
place. State (momentum / Adam moments) is keyed by ``(layer, name)``,
so the same optimiser instance can drive any model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.models.base import GnnModel

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Base class: subclasses implement the per-parameter update rule.

    Parameters
    ----------
    lr:
        Learning rate.
    weight_decay:
        L2 regularisation coefficient; adds ``weight_decay * param`` to
        every gradient before the update (decoupled-style decay is not
        needed for the reproduction's experiments).
    clip_norm:
        If set, rescales the *global* gradient (concatenated over all
        parameters) to at most this L2 norm before updating — the
        standard stabiliser for the exploding VA scores.
    """

    def __init__(self, lr: float, weight_decay: float = 0.0,
                 clip_norm: float | None = None) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        self.lr = lr
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm

    def _global_scale(self, grads: list[dict[str, np.ndarray]]) -> float:
        if self.clip_norm is None:
            return 1.0
        total = 0.0
        for layer_grads in grads:
            for grad in layer_grads.values():
                grad = np.asarray(grad, dtype=np.float64)
                total += float(np.sum(grad * grad))
        norm = np.sqrt(total)
        if not np.isfinite(norm):
            # An overflowed gradient cannot be rescaled meaningfully;
            # skip the step entirely (scale 0) rather than poison params.
            return 0.0
        return min(1.0, self.clip_norm / max(norm, 1e-12))

    def step(
        self, model: GnnModel, grads: list[dict[str, np.ndarray]]
    ) -> None:
        """Apply one update across every layer's parameters."""
        scale = self._global_scale(grads)
        if scale == 0.0:
            # Non-finite global norm: 0 * inf would poison parameters
            # with NaNs, so the step is skipped outright.
            return
        for layer_index, (params, layer_grads) in enumerate(
            zip(model.parameters(), grads)
        ):
            for name, grad in layer_grads.items():
                param = params[name]
                effective = scale * np.asarray(grad)
                if self.weight_decay:
                    effective = effective + self.weight_decay * param
                self._update((layer_index, name), param, effective)

    @abstractmethod
    def _update(
        self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray
    ) -> None:
        """Update ``param`` in place given its gradient."""


class SGD(Optimizer):
    """Stochastic gradient descent, optionally with classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 clip_norm: float | None = None) -> None:
        super().__init__(lr, weight_decay=weight_decay, clip_norm=clip_norm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def _update(self, key, param, grad) -> None:
        grad = grad.astype(param.dtype, copy=False)
        if self.momentum == 0.0:
            param -= self.lr * grad
            return
        vel = self._velocity.get(key)
        if vel is None:
            vel = np.zeros_like(param)
            self._velocity[key] = vel
        vel *= self.momentum
        vel += grad
        param -= self.lr * vel


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(lr, weight_decay=weight_decay, clip_norm=clip_norm)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[tuple[int, str], np.ndarray] = {}
        self._v: dict[tuple[int, str], np.ndarray] = {}
        self._t: dict[tuple[int, str], int] = {}

    def _update(self, key, param, grad) -> None:
        grad64 = grad.astype(np.float64, copy=False)
        m = self._m.setdefault(key, np.zeros(param.shape))
        v = self._v.setdefault(key, np.zeros(param.shape))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1 - self.beta1) * grad64
        v *= self.beta2
        v += (1 - self.beta2) * grad64 * grad64
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(
            param.dtype
        )
