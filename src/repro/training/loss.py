"""Training objectives and their gradients.

Each loss implements the :class:`~repro.models.base.Loss` interface:
``value`` returns the scalar objective and ``gradient`` returns
:math:`\\nabla_{H^L}\\mathcal{L}` — the bootstrap of the generic
backward formulation (Eq. 4). Both support an optional boolean
``mask`` restricting the objective to labelled vertices, the standard
semi-supervised node-classification setting.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Loss

__all__ = ["SoftmaxCrossEntropyLoss", "MSELoss"]


def _masked(
    h: np.ndarray, target: np.ndarray, mask: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    if mask is None:
        return h, target, None
    mask = np.asarray(mask, dtype=bool)
    return h[mask], target[mask], mask


def log_softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable log-softmax."""
    shifted = z - z.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class SoftmaxCrossEntropyLoss(Loss):
    """Mean softmax cross-entropy over (masked) vertices.

    ``target`` holds integer class labels of shape ``(n,)``. The
    gradient is the classic ``softmax(z) - onehot(y)`` scaled by
    ``1 / n_labelled``, scattered back to full shape when masked.
    """

    def __init__(self, mask: np.ndarray | None = None) -> None:
        self.mask = None if mask is None else np.asarray(mask, dtype=bool)

    def value(self, h_out: np.ndarray, target: np.ndarray) -> float:
        h, y, _ = _masked(h_out, np.asarray(target), self.mask)
        if h.shape[0] == 0:
            return 0.0
        logp = log_softmax(h.astype(np.float64))
        return float(-logp[np.arange(h.shape[0]), y].mean())

    def gradient(self, h_out: np.ndarray, target: np.ndarray) -> np.ndarray:
        y_full = np.asarray(target)
        h, y, mask = _masked(h_out, y_full, self.mask)
        grad_local = np.exp(log_softmax(h.astype(np.float64)))
        grad_local[np.arange(h.shape[0]), y] -= 1.0
        grad_local /= max(h.shape[0], 1)
        if mask is None:
            return grad_local.astype(h_out.dtype)
        grad = np.zeros_like(h_out, dtype=np.float64)
        grad[mask] = grad_local
        return grad.astype(h_out.dtype)


class MSELoss(Loss):
    """Mean squared error over (masked) vertices against dense targets."""

    def __init__(self, mask: np.ndarray | None = None) -> None:
        self.mask = None if mask is None else np.asarray(mask, dtype=bool)

    def value(self, h_out: np.ndarray, target: np.ndarray) -> float:
        h, t, _ = _masked(h_out, np.asarray(target), self.mask)
        if h.size == 0:
            return 0.0
        diff = h.astype(np.float64) - t
        return float((diff * diff).mean())

    def gradient(self, h_out: np.ndarray, target: np.ndarray) -> np.ndarray:
        t_full = np.asarray(target)
        h, t, mask = _masked(h_out, t_full, self.mask)
        grad_local = 2.0 * (h.astype(np.float64) - t) / max(h.size, 1)
        if mask is None:
            return grad_local.astype(h_out.dtype)
        grad = np.zeros_like(h_out, dtype=np.float64)
        grad[mask] = grad_local
        return grad.astype(h_out.dtype)
