"""Full-batch training loop.

One iteration is a complete forward pass followed by a complete
backward pass over the whole graph (the paper's measured unit of work),
then one optimiser step. The trainer records per-epoch loss/metric
history and supports early stopping on a validation mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.base import GnnModel, Loss
from repro.obs.tracer import tracer
from repro.tensor.csr import CSRMatrix
from repro.training.metrics import accuracy
from repro.training.optim import Optimizer
from repro.util.counters import FlopCounter, null_counter

__all__ = ["Trainer", "TrainResult"]


@dataclass
class TrainResult:
    """History of one training run."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Trainer:
    """Drives full-batch training of a :class:`GnnModel`.

    Parameters
    ----------
    model, loss, optimizer:
        The three training ingredients; the loss must implement
        :class:`repro.models.base.Loss`.
    """

    def __init__(
        self, model: GnnModel, loss: Loss, optimizer: Optimizer
    ) -> None:
        self.model = model
        self.loss = loss
        self.optimizer = optimizer

    def fit(
        self,
        a: CSRMatrix,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 100,
        train_mask: np.ndarray | None = None,
        val_mask: np.ndarray | None = None,
        patience: int | None = None,
        counter: FlopCounter = null_counter(),
        verbose: bool = False,
    ) -> TrainResult:
        """Train for up to ``epochs`` full-batch iterations.

        ``patience`` enables early stopping on validation accuracy;
        ``train_mask``/``val_mask`` select labelled vertices for the
        metrics (the loss carries its own mask).
        """
        result = TrainResult()
        best_val = -np.inf
        stall = 0
        for epoch in range(epochs):
            with tracer().span("train.epoch", counter=counter, epoch=epoch):
                out = self.model.forward(
                    a, features, counter=counter, training=True
                )
                loss_value = self.loss.value(out, labels)
                grads = self.model.backward(
                    self.loss.gradient(out, labels), counter=counter
                )
                self.optimizer.step(self.model, grads)
            result.losses.append(loss_value)
            # Accuracy only makes sense for class labels (1-D integers);
            # regression targets (e.g. MSE) record NaN.
            classification = np.asarray(labels).ndim == 1
            result.train_accuracies.append(
                accuracy(out, labels, train_mask)
                if classification
                else float("nan")
            )
            if val_mask is not None and not classification:
                result.val_accuracies.append(float("nan"))
            elif val_mask is not None:
                val_acc = accuracy(out, labels, val_mask)
                result.val_accuracies.append(val_acc)
                if patience is not None:
                    if val_acc > best_val:
                        best_val, stall = val_acc, 0
                    else:
                        stall += 1
                        if stall > patience:
                            break
            if verbose:  # pragma: no cover - logging aid
                print(
                    f"epoch {epoch:4d}  loss {loss_value:.4f}  "
                    f"train_acc {result.train_accuracies[-1]:.3f}"
                )
        self.model.zero_caches()
        return result

    def evaluate(
        self,
        a: CSRMatrix,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> float:
        """Inference-mode accuracy on ``mask``."""
        out = self.model.forward(a, features, training=False)
        return accuracy(out, labels, mask)
