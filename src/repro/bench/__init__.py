"""Benchmark harness regenerating the paper's evaluation.

* :mod:`repro.bench.harness` — run one (model, formulation, task,
  graph, k, L, p) configuration end-to-end on the simulated cluster and
  report measured wall time, modeled time (alpha-beta-gamma), and
  communication volume.
* :mod:`repro.bench.configs` — the per-figure parameter grids, scaled
  to the simulated substrate (see DESIGN.md's experiment index).
* :mod:`repro.bench.unified_bench` — a CLI mirroring the artifact's
  ``unified_single_bench.py`` / ``unified_distr_bench.py`` flags.
"""

from repro.bench.configs import FIGURE_CONFIGS, scaled_figure
from repro.bench.harness import BenchRow, make_graph, run_config, write_csv

__all__ = [
    "BenchRow",
    "run_config",
    "make_graph",
    "write_csv",
    "FIGURE_CONFIGS",
    "scaled_figure",
]
