"""Run one benchmark configuration and report the paper's metrics.

A configuration is (model, formulation, task, graph, k, L, p). The
harness executes it on the simulated cluster and reports:

* ``measured_s`` — wall-clock of the threaded simulation (one host; a
  sanity signal, not the plotted quantity);
* ``modeled_s`` — the alpha-beta-gamma machine-model time computed from
  the exact per-rank flop/byte/message accounting. This is what the
  figures plot, because it is the quantity whose *shape* transfers to
  a real cluster (see DESIGN.md's substitution table);
* ``comm_words`` — the BSP communication volume (max words sent by any
  rank), the Section-7 quantity;
* phase breakdowns (attention/softmax/redistribution vs. halo/fetch).
"""

from __future__ import annotations

import csv
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.baselines.dist_local import dist_local_inference, dist_local_train
from repro.baselines.minibatch import MiniBatchConfig, minibatch_train
from repro.distributed.api import distributed_inference, distributed_train
from repro.graphs import erdos_renyi, kronecker, powerlaw_graph
from repro.graphs.prep import graph_stats, prepare_adjacency
from repro.models.gcn import normalize_adjacency
from repro.runtime.costmodel import CostModel
from repro.runtime.stats import RunStats
from repro.tensor.csr import CSRMatrix
from repro.util.rng import make_rng

__all__ = ["BenchRow", "make_graph", "run_config", "write_csv"]


@dataclass
class BenchRow:
    """One measurement — a row of the unified results CSV."""

    figure: str
    model: str
    formulation: str  # "global" | "local" | "minibatch"
    task: str         # "inference" | "training"
    n: int
    m: int
    density: float
    max_degree: int
    k: int
    layers: int
    p: int
    measured_s: float
    modeled_s: float
    modeled_compute_s: float
    modeled_comm_s: float
    comm_words: int
    comm_messages: int
    flops: int
    extra: dict = field(default_factory=dict)

    def as_flat_dict(self) -> dict:
        row = asdict(self)
        extra = row.pop("extra")
        for key, value in extra.items():
            row[f"extra_{key}"] = value
        return row


def make_graph(
    kind: str, n: int, m: int, seed: int = 0
) -> CSRMatrix:
    """Generate an attention-ready adjacency (artifact's ``-d`` flag).

    ``kind`` ∈ {"kronecker", "uniform", "powerlaw"} matching the
    artifact's dataset options (B0/B2/B1-substitute).
    """
    if kind == "kronecker":
        coo = kronecker(n, m, seed=seed)
    elif kind == "uniform":
        coo = erdos_renyi(n, m, seed=seed)
    elif kind == "powerlaw":
        coo = powerlaw_graph(n, m, seed=seed)
    else:
        raise ValueError(f"unknown graph kind {kind!r}")
    return prepare_adjacency(coo)


def run_config(
    figure: str,
    model: str,
    formulation: str,
    task: str,
    a: CSRMatrix,
    k: int,
    layers: int,
    p: int,
    seed: int = 0,
    cost_model: CostModel | None = None,
    minibatch_size: int = 1024,
    minibatch_fanout: int = 10,
    timeout: float = 600.0,
    extra_info: dict | None = None,
) -> BenchRow:
    """Execute one configuration and return its measurement row.

    ``extra_info`` entries are merged into the row's ``extra`` dict
    (e.g. the nominal density of a sweep point, which the generated
    graph only approximates).
    """
    cost_model = cost_model or CostModel()
    rng = make_rng(seed)
    n = a.shape[0]
    stats_summary = graph_stats(a)
    features = rng.normal(0, 1, (n, k)).astype(np.float32)
    labels = rng.integers(0, max(2, min(16, k)), n, dtype=np.int64)
    out_dim = max(2, min(16, k))
    adjacency = normalize_adjacency(a) if model.lower() == "gcn" else a

    start = time.perf_counter()
    stats = _dispatch(
        formulation, task, model, adjacency, features, labels, k, out_dim,
        layers, p, seed, minibatch_size, minibatch_fanout, timeout,
    )
    measured = time.perf_counter() - start

    breakdown = cost_model.breakdown(stats)
    return BenchRow(
        figure=figure,
        model=model.upper(),
        formulation=formulation,
        task=task,
        n=n,
        m=stats_summary.m,
        density=stats_summary.density,
        max_degree=stats_summary.max_degree,
        k=k,
        layers=layers,
        p=p,
        measured_s=measured,
        modeled_s=breakdown["total_s"],
        modeled_compute_s=breakdown["compute_s"],
        modeled_comm_s=breakdown["communication_s"],
        comm_words=stats.max_words_sent,
        comm_messages=stats.max_messages_sent,
        flops=stats.max_flops,
        extra={
            **(extra_info or {}),
            **{f"phase_{k_}": v for k_, v in stats.phase_bytes().items()},
        },
    )


def _dispatch(
    formulation, task, model, a, features, labels, k, out_dim, layers, p,
    seed, minibatch_size, minibatch_fanout, timeout,
) -> RunStats:
    if formulation == "global":
        if task == "inference":
            return distributed_inference(
                model, a, features, k, out_dim, num_layers=layers, p=p,
                seed=seed, timeout=timeout,
            ).stats
        return distributed_train(
            model, a, features, labels, k, out_dim, num_layers=layers,
            p=p, epochs=1, seed=seed, timeout=timeout, collect_output=False,
        ).stats
    if formulation == "local":
        if task == "inference":
            return dist_local_inference(
                model, a, features, k, out_dim, num_layers=layers, p=p,
                seed=seed, timeout=timeout,
            )[1]
        return dist_local_train(
            model, a, features, labels, k, out_dim, num_layers=layers,
            p=p, epochs=1, seed=seed, timeout=timeout,
        )[1]
    if formulation == "minibatch":
        config = MiniBatchConfig(
            batch_size=minibatch_size,
            fanouts=tuple([minibatch_fanout] * layers),
            seed=seed,
        )
        return minibatch_train(
            model, a, features, labels, k, out_dim, num_layers=layers,
            p=p, iterations=1, config=config, seed=seed, timeout=timeout,
        )[1]
    raise ValueError(f"unknown formulation {formulation!r}")


def write_csv(rows: list[BenchRow], path: str | Path) -> None:
    """Append rows to a unified results CSV (header written once)."""
    path = Path(path)
    rows_flat = [row.as_flat_dict() for row in rows]
    fields: list[str] = []
    for row in rows_flat:
        for key in row:
            if key not in fields:
                fields.append(key)
    exists = path.exists()
    with path.open("a", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields, restval="")
        if not exists:
            writer.writeheader()
        writer.writerows(rows_flat)
