"""Unified benchmark CLI — the artifact's driver, reimplemented.

Mirrors ``unified_single_bench.py`` / ``unified_distr_bench.py``:

.. code-block:: console

    $ python -m repro.bench.unified_bench -m VA -v 10000 -e 1000000
    $ python -m repro.bench.unified_bench -m GAT -v 4096 -e 200000 \
          -p 4 --features 32 -l 3 --inference -d kronecker

Where the artifact selects rank count via ``mpirun -n``, the simulated
cluster takes ``-p`` (a perfect square). Results (median and standard
deviation over ``--repeat`` runs after ``--warmup`` discards) are
appended to a CSV, like the artifact's ``unified_results.csv``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench.harness import BenchRow, make_graph, run_config, write_csv
from repro.graphs.io import load_npz
from repro.graphs.prep import prepare_adjacency

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="unified_bench",
        description="Benchmark GNN models on the simulated cluster.",
    )
    parser.add_argument("-s", "--seed", type=int, default=0,
                        help="The seed for the random number generator.")
    parser.add_argument("-v", "--vertices", type=int, default=1 << 12,
                        help="The number of vertices in the graph.")
    parser.add_argument("-e", "--edges", type=int, default=1 << 16,
                        help="The number of edges in the graph.")
    parser.add_argument("-t", "--type", choices=["float32", "float64"],
                        default="float32", help="The type of the data.")
    parser.add_argument("-m", "--model", choices=["VA", "GAT", "AGNN", "GCN"],
                        default="VA", help="The model to test.")
    parser.add_argument("-f", "--file", default=None,
                        help="npz file containing the adjacency matrix (COO).")
    parser.add_argument("-d", "--dataset",
                        choices=["kronecker", "uniform", "powerlaw"],
                        default="kronecker",
                        help="Graph generator for the adjacency matrix.")
    parser.add_argument("--features", type=int, default=16,
                        help="The number of features.")
    parser.add_argument("--inference", action="store_true",
                        help="Run inference only (no backward pass).")
    parser.add_argument("-l", "--layers", type=int, default=3,
                        help="The number of layers in the GNN model.")
    parser.add_argument("-p", "--processes", type=int, default=1,
                        help="Simulated rank count (perfect square).")
    parser.add_argument("--formulation",
                        choices=["global", "local", "minibatch"],
                        default="global", help="Execution formulation.")
    parser.add_argument("--repeat", type=int, default=10,
                        help="The number of times to repeat the benchmark.")
    parser.add_argument("--warmup", type=int, default=2,
                        help="The number of warmup runs.")
    parser.add_argument("--output", default="unified_results.csv",
                        help="CSV file results are appended to.")
    parser.add_argument("--validate", action="store_true",
                        help="Check distributed engines against the "
                             "single-node reference instead of timing.")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.file:
        adjacency = prepare_adjacency(load_npz(args.file))
        print(f"loaded {args.file}: n={adjacency.shape[0]}, m={adjacency.nnz}")
    else:
        adjacency = make_graph(
            args.dataset, args.vertices, args.edges, seed=args.seed
        )

    if args.validate:
        from repro.bench.validate import validate_model

        report = validate_model(
            args.model, adjacency, k=args.features, layers=args.layers,
            p=max(args.processes, 4), seed=args.seed,
        )
        print(report)
        return 0 if report.passed else 1

    task = "inference" if args.inference else "training"
    rows: list[BenchRow] = []
    timings = []
    total = args.warmup + args.repeat
    for iteration in range(total):
        row = run_config(
            figure="cli",
            model=args.model,
            formulation=args.formulation,
            task=task,
            a=adjacency,
            k=args.features,
            layers=args.layers,
            p=args.processes,
            seed=args.seed,
        )
        if iteration >= args.warmup:
            rows.append(row)
            timings.append(row.measured_s)

    median = float(np.median(timings))
    std = float(np.std(timings))
    print(
        f"{args.model} {args.formulation} {task}: "
        f"n={adjacency.shape[0]} m={adjacency.nnz} k={args.features} "
        f"L={args.layers} p={args.processes} | "
        f"measured median {median:.4f}s (std {std:.4f}) | "
        f"modeled {rows[-1].modeled_s:.6f}s | "
        f"comm {rows[-1].comm_words} words"
    )
    write_csv(rows, args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
