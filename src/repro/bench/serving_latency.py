"""Online-serving latency/throughput harness (p50/p99, open loop).

Measures the serving subsystem's headline claim — coalesced
union-batched inference beats naive per-request forwards by a
multi-× factor — on a power-law graph with degree-skewed (hub-heavy)
traffic, the regime ROADMAP item 2 targets. Three phases per run:

1. **Sequential baseline** — the same request trace served one seed at
   a time on a cache-less engine: per-request latency and throughput of
   naive serving.
2. **Coalesced closed loop** — ``requesters`` threads (acceptance: 64)
   each issue their slice of the trace back-to-back against a
   :class:`~repro.serving.engine.ServingServer`; the throughput ratio
   against phase 1 is the recorded speedup.
3. **Poisson open loop** — arrivals at ``rate_hz`` with exponential
   inter-arrival gaps (open-loop load is the honest way to measure
   tail latency: queueing delay is part of the number, and the arrival
   process does not slow down when the server does). Per-request
   end-to-end latency (submit → future resolution) yields p50/p99.

Cache hit rate, mean flush size and span/metric streams ride along via
the obs registry; run with ``$REPRO_TRACE`` set to get a Perfetto
timeline of admits/flushes/cache probes.

CLI (the CI ``serving`` job's artifact producer):

.. code-block:: console

   $ PYTHONPATH=src python -m repro.bench.serving_latency \\
         --out benchmarks/results/serving_latency.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

__all__ = ["run", "main"]


def _degree_skewed_trace(
    a, length: int, rng: np.random.Generator
) -> np.ndarray:
    """A request trace drawn proportionally to in-degree (hub-heavy)."""
    deg = (a.indptr[1:] - a.indptr[:-1]).astype(np.float64)
    deg = np.maximum(deg, 1.0)
    return rng.choice(a.shape[0], size=length, p=deg / deg.sum())


def _quantiles_ms(latencies_s: list[float]) -> dict[str, float]:
    values = np.asarray(latencies_s, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.quantile(values, 0.50)), 4),
        "p95_ms": round(float(np.quantile(values, 0.95)), 4),
        "p99_ms": round(float(np.quantile(values, 0.99)), 4),
        "mean_ms": round(float(values.mean()), 4),
        "max_ms": round(float(values.max()), 4),
    }


def run(
    n: int = 1 << 14,
    mean_degree: int = 8,
    feature_dim: int = 32,
    hidden_dim: int = 32,
    num_classes: int = 8,
    num_layers: int = 2,
    model: str = "gat",
    fanout: int | None = 8,
    requesters: int = 64,
    requests_per_requester: int = 8,
    rate_hz: float = 500.0,
    open_loop_requests: int = 512,
    max_batch: int | None = None,
    max_delay_ms: float | None = None,
    cache_capacity: int = 1 << 16,
    hub_weights: bool = True,
    seed: int | None = None,
) -> dict:
    """Run all three phases; return the JSON-ready record.

    The whole record is a pure function of the arguments modulo
    wall-clock (graph, features, model init, trace and sampling streams
    all derive from the one seed).
    """
    from repro.bench.harness import make_graph
    from repro.models import build_model
    from repro.serving import ServingEngine, ServingServer
    from repro.util.rng import make_rng, repro_seed_default

    seed = repro_seed_default() if seed is None else int(seed)
    rng = make_rng(seed)
    a = make_graph("powerlaw", n, mean_degree * n, seed=seed)
    features = rng.normal(size=(n, feature_dim))
    gnn = build_model(
        model, feature_dim, hidden_dim, num_classes,
        num_layers=num_layers, seed=seed,
    )
    fanouts = None if fanout is None else (fanout,) * num_layers
    total_requests = requesters * requests_per_requester
    trace = _degree_skewed_trace(a, total_requests, rng)

    # ------------------------------------------------------------------
    # Phase 1: sequential per-request forwards (no cache, no batching).
    # ------------------------------------------------------------------
    sequential_engine = ServingEngine(
        gnn, a, features, fanouts=fanouts, cache=None, seed=seed,
    )
    sequential_lat: list[float] = []
    t0 = time.perf_counter()
    for node in trace:
        t_req = time.perf_counter()
        sequential_engine.serve([int(node)])
        sequential_lat.append(time.perf_counter() - t_req)
    sequential_s = time.perf_counter() - t0
    sequential_rps = total_requests / sequential_s

    # ------------------------------------------------------------------
    # Phase 2: closed loop, `requesters` concurrent threads, coalesced.
    # ------------------------------------------------------------------
    def make_engine() -> ServingEngine:
        return ServingEngine(
            gnn, a, features, fanouts=fanouts,
            cache=cache_capacity if cache_capacity else None,
            weights="hub" if (hub_weights and fanout is not None) else None,
            seed=seed,
        )

    closed_engine = make_engine()
    closed_lat: list[float] = []
    lat_lock = threading.Lock()
    barrier = threading.Barrier(requesters + 1)

    def requester(slice_nodes: np.ndarray) -> None:
        barrier.wait()
        own: list[float] = []
        for node in slice_nodes:
            t_req = time.perf_counter()
            future = server.submit(int(node))
            future.result()
            own.append(time.perf_counter() - t_req)
        with lat_lock:
            closed_lat.extend(own)

    with ServingServer(
        closed_engine, max_batch=max_batch, max_delay_ms=max_delay_ms,
    ) as server:
        threads = [
            threading.Thread(
                target=requester,
                args=(trace[i::requesters],),
                daemon=True,
            )
            for i in range(requesters)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        t0 = time.perf_counter()
        for thread in threads:
            thread.join()
        closed_s = time.perf_counter() - t0
    closed_rps = total_requests / closed_s

    # ------------------------------------------------------------------
    # Phase 3: Poisson open loop at `rate_hz`.
    # ------------------------------------------------------------------
    open_engine = make_engine()
    open_lat: list[float] = []
    done = threading.Event()
    pending = threading.Semaphore(0)

    def on_done(t_req: float):
        def callback(_future) -> None:
            with lat_lock:
                open_lat.append(time.perf_counter() - t_req)
            pending.release()

        return callback

    open_trace = _degree_skewed_trace(a, open_loop_requests, rng)
    gaps = rng.exponential(1.0 / rate_hz, size=open_loop_requests)
    with ServingServer(
        open_engine, max_batch=max_batch, max_delay_ms=max_delay_ms,
    ) as server:
        t0 = time.perf_counter()
        t_next = t0
        for node, gap in zip(open_trace, gaps):
            t_next += gap
            delay = t_next - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            t_req = time.perf_counter()
            server.submit(int(node)).add_done_callback(on_done(t_req))
        for _ in range(open_loop_requests):
            pending.acquire()
        open_s = time.perf_counter() - t0
    done.set()
    open_rps = open_loop_requests / open_s

    cache = open_engine.cache
    record = {
        "meta": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "model": model,
            "n": int(n),
            "num_edges": int(a.nnz),
            "feature_dim": int(feature_dim),
            "hidden_dim": int(hidden_dim),
            "num_classes": int(num_classes),
            "num_layers": int(num_layers),
            "fanout": fanout,
            "requesters": int(requesters),
            "requests_per_requester": int(requests_per_requester),
            "rate_hz": float(rate_hz),
            "open_loop_requests": int(open_loop_requests),
            "max_batch": max_batch,
            "max_delay_ms": max_delay_ms,
            "cache_capacity": int(cache_capacity),
            "hub_weights": bool(hub_weights),
            "seed": int(seed),
        },
        "sequential": {
            "requests": int(total_requests),
            "total_s": round(sequential_s, 4),
            "throughput_rps": round(sequential_rps, 2),
            **_quantiles_ms(sequential_lat),
        },
        "coalesced": {
            "requests": int(total_requests),
            "total_s": round(closed_s, 4),
            "throughput_rps": round(closed_rps, 2),
            "speedup_vs_sequential": round(closed_rps / sequential_rps, 3),
            "cache_hit_rate": (
                round(closed_engine.cache.hit_rate, 4)
                if closed_engine.cache is not None
                else None
            ),
            **_quantiles_ms(closed_lat),
        },
        "open_loop": {
            "requests": int(open_loop_requests),
            "offered_rate_hz": float(rate_hz),
            "total_s": round(open_s, 4),
            "throughput_rps": round(open_rps, 2),
            "cache_hit_rate": (
                round(cache.hit_rate, 4) if cache is not None else None
            ),
            "cache_entries": len(cache) if cache is not None else 0,
            **_quantiles_ms(open_lat),
        },
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving latency harness: sequential vs coalesced "
        "vs Poisson open-loop inference on a power-law graph."
    )
    parser.add_argument("--n", type=int, default=1 << 14)
    parser.add_argument("--degree", type=int, default=8,
                        help="mean degree of the power-law graph")
    parser.add_argument("--feat", type=int, default=32)
    parser.add_argument("--hidden", type=int, default=32)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--model", default="gat")
    parser.add_argument(
        "--fanout", type=int, default=8,
        help="per-hop fan-out; 0 means full (exact) ego graphs",
    )
    parser.add_argument("--requesters", type=int, default=64)
    parser.add_argument("--requests-per-requester", type=int, default=8)
    parser.add_argument("--rate-hz", type=float, default=500.0)
    parser.add_argument("--open-loop-requests", type=int, default=512)
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="coalescing batch cap (default $REPRO_SERVE_MAX_BATCH)",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=None,
        help="admission delay bound (default $REPRO_SERVE_MAX_DELAY_MS)",
    )
    parser.add_argument("--cache-capacity", type=int, default=1 << 16,
                        help="activation-cache entries; 0 disables")
    parser.add_argument("--no-hub-weights", action="store_true",
                        help="disable degree-biased importance sampling")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="defaults to $REPRO_SEED (else 0)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the full JSON record to this path",
    )
    args = parser.parse_args(argv)

    record = run(
        n=args.n, mean_degree=args.degree, feature_dim=args.feat,
        hidden_dim=args.hidden, num_classes=args.classes,
        num_layers=args.layers, model=args.model,
        fanout=None if args.fanout == 0 else args.fanout,
        requesters=args.requesters,
        requests_per_requester=args.requests_per_requester,
        rate_hz=args.rate_hz, open_loop_requests=args.open_loop_requests,
        max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
        cache_capacity=args.cache_capacity,
        hub_weights=not args.no_hub_weights, seed=args.seed,
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    if args.out is not None:
        print(f"record written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
