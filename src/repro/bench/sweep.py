"""Figure-sweep driver — the artifact's ``unified_strong.sh`` /
``unified_weak.sh`` equivalents.

The artifact ships shell scripts that enqueue every (model, graph, k,
node-count) job of a figure into SLURM. On the simulated cluster the
whole sweep runs in-process:

.. code-block:: console

    $ python -m repro.bench.sweep fig6_k16 --output benchmarks/results
    $ python -m repro.bench.sweep --list
    $ python -m repro.bench.sweep fig8_weak_kron --scale 2.0

After a sweep, render the figures with ``python -m repro.bench.report``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.configs import FIGURE_CONFIGS
from repro.bench.harness import make_graph, run_config, write_csv

__all__ = ["run_sweep", "main"]


def run_sweep(
    figure: str,
    scale: float = 1.0,
    seed: int = 0,
    verbose: bool = True,
) -> list:
    """Run every sweep point of a figure; returns the measurement rows."""
    config = FIGURE_CONFIGS[figure]
    rows = []
    graphs: dict[tuple, object] = {}
    for model, formulation, n, m, k, p, rho in config.points(scale):
        key = (config.graph_kind, n, m)
        if key not in graphs:
            graphs[key] = make_graph(config.graph_kind, n, m, seed=seed)
        start = time.perf_counter()
        row = run_config(
            figure=figure,
            model=model,
            formulation=formulation,
            task=config.task,
            a=graphs[key],
            k=k,
            layers=config.layers,
            p=p,
            seed=seed,
            minibatch_size=max(8, graphs[key].shape[0] // 8),
            extra_info={"rho": rho},
        )
        rows.append(row)
        if verbose:
            wall = time.perf_counter() - start
            print(
                f"  {model:<5} {formulation:<10} n={n:<7} k={k:<4} "
                f"p={p:<3} rho={rho:<8.4g} modeled={row.modeled_s:.3e}s "
                f"({wall:.1f}s wall)"
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sweep", description="Run one figure's full benchmark sweep."
    )
    parser.add_argument("figure", nargs="?", help="figure name")
    parser.add_argument("--list", action="store_true",
                        help="list available figures")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem-size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="benchmarks/results",
                        help="directory for the results CSV")
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        for name, config in FIGURE_CONFIGS.items():
            print(f"{name:<16} {config.description}")
        return 0
    if args.figure not in FIGURE_CONFIGS:
        print(f"unknown figure {args.figure!r}; use --list", file=sys.stderr)
        return 1
    print(f"sweeping {args.figure} (scale {args.scale}) ...")
    rows = run_sweep(args.figure, scale=args.scale, seed=args.seed)
    from pathlib import Path

    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    write_csv(rows, out_dir / f"{args.figure}.csv")
    print(f"{len(rows)} rows appended to {out_dir / (args.figure + '.csv')}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
