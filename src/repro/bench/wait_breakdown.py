"""Per-rank wait-time breakdown reporter (CI artifact producer).

Runs the medium-ER training point once synchronously and once with the
comm/compute-overlapped schedules and dumps every rank's
:meth:`~repro.runtime.stats.RunStats.breakdown` — wall seconds, blocked
seconds, compute share and the per-phase wait attribution — as JSON.
The artifact answers "where do the ranks stall, and how much of it does
overlap hide" without re-running anything locally::

    PYTHONPATH=src python -m repro.bench.wait_breakdown \
        --out benchmarks/results/wait_breakdown.json
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any

import numpy as np

from repro.bench.strong_scaling import MEDIUM_ER, timed_training_program
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.runtime.executor import run_spmd
from repro.util.rng import make_rng

__all__ = ["collect_wait_breakdown", "main"]


def collect_wait_breakdown(
    model_name: str = "AGNN",
    backend: str = "process",
    p: int = 4,
    n: int = MEDIUM_ER["n"],
    density: float = MEDIUM_ER["density"],
    k: int = MEDIUM_ER["k"],
    layers: int = MEDIUM_ER["layers"],
    epochs: int = MEDIUM_ER["epochs"],
    seed: int = MEDIUM_ER["seed"],
    timeout: float = 600.0,
) -> dict[str, Any]:
    """One training run per overlap mode; returns the breakdown payload."""
    m = max(n, int(density * n * n))
    a = prepare_adjacency(erdos_renyi(n, m, seed=seed), dtype=np.float64)
    rng = make_rng(seed + 1)
    features = rng.normal(size=(n, k)).astype(np.float64)
    labels = rng.integers(0, 4, size=n)

    modes: dict[str, Any] = {}
    for label, overlap in (("synchronous", False), ("overlap", True)):
        result = run_spmd(
            p, timed_training_program, timeout=timeout, backend=backend,
            model_name=model_name, a=a, features=features, labels=labels,
            hidden_dim=k, out_dim=4, num_layers=layers, epochs=epochs,
            lr=0.01, seed=seed, dtype=np.float64, overlap=overlap,
        )
        modes[label] = {
            "backend": result.backend,
            "train_s": max(elapsed for elapsed, _losses in result.values),
            "max_wait_s": result.stats.max_wait_s,
            "total_wait_s": result.stats.total_wait_s,
            "per_rank": result.stats.breakdown(),
        }
    return {
        "figure": "wait_breakdown",
        "model": model_name,
        "p": p,
        "n": n,
        "m": m,
        "k": k,
        "layers": layers,
        "epochs": epochs,
        "cpu_count": os.cpu_count(),
        "modes": modes,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="AGNN")
    parser.add_argument("--backend", default="process",
                        choices=("thread", "process"))
    parser.add_argument("--p", type=int, default=4)
    parser.add_argument("--out", default="benchmarks/results/wait_breakdown.json")
    args = parser.parse_args(argv)
    payload = collect_wait_breakdown(
        model_name=args.model, backend=args.backend, p=args.p
    )
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    for label, mode in payload["modes"].items():
        print(
            f"{label:<12} train_s={mode['train_s']:.3f} "
            f"max_wait_s={mode['max_wait_s']:.3f} "
            f"total_wait_s={mode['total_wait_s']:.3f}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
