"""Figure rendering from benchmark results — the artifact's plot step.

The original artifact ships ``plots/create_plots_artifact.py`` turning
``unified_results.csv`` into the submission's PDF figures. This module
is its dependency-free equivalent: it reads the CSVs produced by the
benchmark suite (``benchmarks/results/*.csv``) and renders each figure
as aligned text panels — one panel per (figure, task, k), one series
per (model, formulation), modeled time against rank count, with a
log-scale ASCII sparkline so scaling trends are visible at a glance.

Run:

.. code-block:: console

    $ python -m repro.bench.report benchmarks/results
"""

from __future__ import annotations

import csv
import math
import sys
from collections import defaultdict
from pathlib import Path

__all__ = ["load_results", "render_figure", "main"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def load_results(results_dir: str | Path) -> list[dict]:
    """Read every results CSV, de-duplicating repeated sweep points.

    Later rows win (files are append-only across re-runs).
    """
    rows: dict[tuple, dict] = {}
    for path in sorted(Path(results_dir).glob("*.csv")):
        with path.open() as handle:
            for row in csv.DictReader(handle):
                key = (
                    row.get("figure"), row.get("model"),
                    row.get("formulation"), row.get("task"),
                    row.get("n"), row.get("k"), row.get("p"),
                    row.get("density"),
                )
                rows[key] = row
    return list(rows.values())


def _sparkline(values: list[float]) -> str:
    """Log-scale sparkline of a positive series."""
    finite = [v for v in values if v > 0]
    if not finite:
        return " " * len(values)
    logs = [math.log10(v) if v > 0 else math.log10(min(finite)) for v in values]
    low, high = min(logs), max(logs)
    span = (high - low) or 1.0
    return "".join(
        _BLOCKS[int((value - low) / span * (len(_BLOCKS) - 1))]
        for value in logs
    )


def render_figure(rows: list[dict], figure: str) -> str:
    """Render one figure's panels as text."""
    selected = [r for r in rows if r.get("figure") == figure]
    if not selected:
        return f"(no data for {figure})"
    lines = [f"==== {figure} " + "=" * max(1, 60 - len(figure))]
    panels = defaultdict(list)
    for row in selected:
        panels[(row["task"], row["k"])].append(row)
    for (task, k), panel_rows in sorted(panels.items()):
        lines.append(f"\n-- task={task}, k={k} --")
        series = defaultdict(dict)
        for row in panel_rows:
            rho = row.get("extra_rho") or f"{float(row['density']):.4f}"
            label = (row["model"], row["formulation"], rho)
            series[label][int(row["p"])] = float(row["modeled_s"])
        lines.append(
            f"{'model':<6} {'formulation':<11} {'rho':>8} "
            f"{'p=1':>11} {'p=4':>11} {'p=16':>11}  trend"
        )
        for (model, formulation, rho), points in sorted(series.items()):
            ps = sorted(points)
            cells = []
            for p in (1, 4, 16):
                cells.append(
                    f"{points[p]:>10.2e}s" if p in points else f"{'-':>11}"
                )
            trend = _sparkline([points[p] for p in ps])
            lines.append(
                f"{model:<6} {formulation:<11} {str(rho)[:8]:>8} "
                f"{cells[0]} {cells[1]} {cells[2]}  {trend}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI: render every figure found in a results directory."""
    argv = sys.argv[1:] if argv is None else argv
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    if not results_dir.exists():
        print(f"no results directory at {results_dir}", file=sys.stderr)
        return 1
    rows = load_results(results_dir)
    figures = sorted({r["figure"] for r in rows if r.get("figure")})
    if not figures:
        print("no benchmark rows found", file=sys.stderr)
        return 1
    for figure in figures:
        print(render_figure(rows, figure))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
