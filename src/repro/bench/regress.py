"""Kernel-timing regression harness against a committed baseline.

``run_suite`` times the Table-2 kernel vocabulary (best-of-N
wall-clock, seconds) on a fixed Erdős–Rényi operand set; ``compare``
flags kernels slower than the committed baseline by more than a
tolerance; ``main`` is the CLI behind ``benchmarks/compare_bench.py``:

.. code-block:: console

   $ python benchmarks/compare_bench.py --update   # rewrite baseline
   $ python benchmarks/compare_bench.py            # exit 1 on >20% slip

The same check is wired into pytest as the opt-in ``benchcompare``
marker (``pytest -m benchcompare tests/test_bench_regression.py``);
it is deselected by default because wall-clock baselines are only
meaningful on the machine that recorded them.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "BASELINE_PATH",
    "run_suite",
    "compare",
    "load_baseline",
    "write_baseline",
    "main",
]

#: Committed wall-clock baseline (see ``--update``).
BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_kernels.json"
)

#: Fail threshold: a kernel this much slower than baseline is a regression.
DEFAULT_THRESHOLD = 0.20


#: Minimum wall-clock per timed batch; sub-millisecond kernels are
#: looped until a batch takes this long, keeping timer noise ≪ the
#: regression threshold.
_MIN_BATCH_S = 5e-3


def _best_time(fn, repeats: int) -> float:
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    iters = max(1, int(_MIN_BATCH_S / max(once, 1e-9)))
    best = once
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def run_suite(
    n: int = 2048, deg: int = 16, k: int = 32, repeats: int = 5
) -> dict[str, float]:
    """Best-of-``repeats`` seconds for each kernel, keyed by name."""
    from repro.bench.harness import make_graph
    from repro.fusion.layer import DagLayer
    from repro.models.base import GnnModel
    from repro.models.gat import MultiHeadGATLayer
    from repro.tensor.kernels import (
        masked_row_softmax,
        sddmm_add,
        sddmm_cosine,
        sddmm_dot,
        spmm,
    )
    from repro.tensor.megakernel import attention_backward, attention_forward

    rng = np.random.default_rng(0)
    a = make_graph("uniform", n, deg * n, seed=0)
    h = rng.normal(size=(n, k)).astype(np.float32)
    u = rng.normal(size=n).astype(np.float32)
    scores = a.with_data(rng.normal(size=a.nnz).astype(np.float32))

    # Head-batched multi-head GAT layer step (fwd+bwd, 8 heads) on a
    # small graph — the overhead-amortisation regime the batching
    # targets; gates the whole stacked-kernel path end to end.
    mh_a = make_graph("uniform", 64, 256, seed=0).astype(np.float64)
    mh_h = rng.normal(size=(64, 16))
    mh_g = rng.normal(size=(64, 64))
    mh_layer = MultiHeadGATLayer(16, 8, heads=8, seed=3,
                                 dtype=np.float64, batched=True)

    def mh_step():
        out, cache = mh_layer.forward(mh_a, mh_h)
        mh_layer.backward(cache, mh_g)

    # Single-sweep megakernel on the same 8-head GAT step — the fused
    # counterpart of ``gat8_multihead_batched`` (SDDMM → softmax → SpMM
    # in one CSR sweep, backward reusing the saved softmax stats).
    mk_y = rng.normal(size=(64, 8, 8))
    mk_dz = rng.normal(size=(64, 8, 8))
    mk_u = rng.normal(size=(64, 8))
    mk_v = rng.normal(size=(64, 8))

    def mega_step():
        z, stats = attention_forward(
            mh_a, "add", mk_y, u=mk_u, v=mk_v, softmax=True
        )
        attention_backward(
            mh_a, "add", mk_y, mk_dz, stats=stats, u=mk_u, v=mk_v
        )

    # 3-layer derived-backward training steps, interpreter vs fused —
    # the end-to-end contest the megakernel has to win (warm caches).
    dag_a = make_graph("uniform", n, deg * n, seed=1).astype(np.float64)
    dag_h = rng.normal(size=(n, k))
    dag_g = rng.normal(size=(n, k))

    def dag_model(name: str, fused: bool, **kw) -> GnnModel:
        return GnnModel([
            DagLayer(name, k, k, seed=layer, fused=fused, **kw)
            for layer in range(3)
        ])

    def dag_step(model: GnnModel):
        out = model.forward(dag_a, dag_h, training=True)
        model.backward(dag_g)

    # One sampled mini-batch training step (sample + fwd + bwd + update)
    # of a 2-layer GAT on a heavy-tailed graph — gates the end-to-end
    # sampling engine: fan-out top-k, block compaction, and the blocked
    # layer sweep together.
    from repro.models import build_model
    from repro.tensor.sampling_graph import sample_blocks
    from repro.training.loss import SoftmaxCrossEntropyLoss
    from repro.training.minibatch import train_step
    from repro.training.optim import SGD

    pl_a = make_graph("powerlaw", n, deg * n, seed=2).astype(np.float32)
    pl_h = rng.normal(size=(n, k)).astype(np.float32)
    pl_y = rng.integers(0, 8, n)
    pl_model = build_model("gat", k, k, 8, num_layers=2, seed=0,
                           dtype=np.float32)
    pl_loss = SoftmaxCrossEntropyLoss()
    pl_opt = SGD(0.01)
    pl_rng = np.random.default_rng(0)
    pl_targets = np.arange(256, dtype=np.int64)

    def sampled_step():
        blocks = sample_blocks(pl_a, pl_targets, (8, 8), pl_rng)
        train_step(pl_model, pl_loss, pl_opt, blocks, pl_h, pl_y)

    # One coalesced serving flush (64-seed union ego batch, hub-biased
    # fan-out) of the same 2-layer GAT — gates the online-inference
    # path: union sampling, cache probe / splice, and the blocked
    # ascent together. The seed batches rotate and the cache is sized
    # below the working set so every flush mixes hits with sampled
    # misses instead of degenerating to a pure cache read.
    import itertools

    from repro.serving import ServingEngine

    serve_engine = ServingEngine(
        pl_model, pl_a, pl_h, fanouts=(8, 8), cache=n // 2,
        weights="hub", seed=0,
    )
    serve_rng = np.random.default_rng(4)
    serve_batches = itertools.cycle([
        np.unique(serve_rng.integers(0, n, 64)) for _ in range(8)
    ])

    def serving_step():
        serve_engine.serve_unique(next(serve_batches))

    dag_models = {
        "dag_gat3_interp": dag_model("gat", fused=False),
        "dag_gat3_fused": dag_model("gat", fused=True),
        "dag_agnn3_interp": dag_model("agnn", fused=False, beta=0.8),
        "dag_agnn3_fused": dag_model("agnn", fused=True, beta=0.8),
    }

    cases = {
        "spmm_scipy": lambda: spmm(a, h, backend="scipy"),
        "spmm_reference": lambda: spmm(a, h, backend="reference"),
        "sddmm_dot": lambda: sddmm_dot(a, h, h),
        "sddmm_add": lambda: sddmm_add(a, u, u),
        "sddmm_cosine": lambda: sddmm_cosine(a, h),
        "masked_row_softmax": lambda: masked_row_softmax(scores),
        "transpose_warm": lambda: a.transpose(),
        "col_sum": lambda: a.col_sum(),
        "gat8_multihead_batched": mh_step,
        "gat8_fused": mega_step,
        "gat_sampled_powerlaw": sampled_step,
        "gat_serving_batched": serving_step,
    }
    cases.update({
        name: (lambda model=model: dag_step(model))
        for name, model in dag_models.items()
    })
    results: dict[str, float] = {}
    for name, fn in cases.items():
        fn()  # warm structure caches and workspaces
        results[name] = _best_time(fn, repeats)
    return results


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[tuple[str, float, float]]:
    """Kernels regressed past ``threshold``: ``(name, base_s, cur_s)``.

    Kernels present on only one side are skipped — adding a kernel to
    the suite must not fail until the baseline is regenerated.
    """
    regressions = []
    for name, base_s in baseline.items():
        cur_s = current.get(name)
        if cur_s is None:
            continue
        if cur_s > base_s * (1.0 + threshold):
            regressions.append((name, base_s, cur_s))
    return regressions


def load_baseline(path: Path = BASELINE_PATH) -> dict[str, float]:
    with open(path) as fh:
        return json.load(fh)["results"]


def write_baseline(
    results: dict[str, float], path: Path = BASELINE_PATH
) -> None:
    payload = {
        "meta": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": {k: round(v, 6) for k, v in results.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare kernel timings against the committed baseline."
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help="baseline JSON path (default: benchmarks/BENCH_kernels.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative slowdown that counts as a regression",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    args = parser.parse_args(argv)

    current = run_suite(repeats=args.repeats)
    width = max(len(name) for name in current)
    if args.update:
        write_baseline(current, args.baseline)
        for name, cur_s in sorted(current.items()):
            print(f"{name:<{width}}  {cur_s * 1e3:8.3f} ms")
        print(f"baseline written to {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(
            f"no baseline at {args.baseline}; record one with --update"
        )
        return 1
    regressions = compare(current, baseline, args.threshold)
    flagged = {name for name, _, _ in regressions}
    for name, cur_s in sorted(current.items()):
        base_s = baseline.get(name)
        note = "  (no baseline)"
        if base_s is not None:
            delta = (cur_s - base_s) / base_s
            note = f"  baseline {base_s * 1e3:8.3f} ms  {delta:+7.1%}"
            note += "  REGRESSION" if name in flagged else ""
        print(f"{name:<{width}}  {cur_s * 1e3:8.3f} ms{note}")
    if regressions:
        offenders = ", ".join(
            f"{name} ({(cur_s - base_s) / base_s:+.1%})"
            for name, base_s, cur_s in sorted(regressions)
        )
        print(
            f"{len(regressions)} case(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}: {offenders}"
        )
        return 1
    print(f"no regressions beyond {args.threshold:.0%} vs {args.baseline}")
    return 0
