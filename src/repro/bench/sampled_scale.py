"""Sampled GAT training on graphs beyond the full-batch ceiling.

The full-batch trainer caches every layer's activations for the whole
graph, which bounds the graph size one rank can train. The sampled
engine bounds the working set by the fan-out budget instead; this
module measures that claim on a heavy-tailed (power-law) graph sized
well past the estimated full-batch activation footprint, and records
ms/epoch, peak RSS and the batch-loss curve.

CLI (the CI ``sampling`` job's artifact producer and the determinism
matrix's replay target — ``--losses-only`` emits one loss per line so
two runs with the same ``$REPRO_SEED`` can be ``diff``\\ ed):

.. code-block:: console

   $ PYTHONPATH=src python -m repro.bench.sampled_scale --out scale.json
   $ REPRO_SEED=7 PYTHONPATH=src python -m repro.bench.sampled_scale \\
         --epochs 1 --losses-only > a.txt
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

__all__ = [
    "run",
    "activation_footprint_mb",
    "peak_rss_mb",
    "main",
]


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    scale = 1 / (1024 * 1024) if sys.platform == "darwin" else 1 / 1024
    return float(peak) * scale


def activation_footprint_mb(
    num_vertices: int,
    num_edges: int,
    feature_dim: int,
    hidden_dim: int,
    num_classes: int,
    num_layers: int,
    itemsize: int = 4,
) -> float:
    """Estimated training-cache footprint of one forward pass (MiB).

    Per layer the trainer caches the layer input, the pre-activation
    and the output (``n x dim`` each) plus a few per-edge score arrays
    (attention scores, softmax stats) — the quantity that makes
    full-batch training infeasible past the memory ceiling. The same
    formula applied to a batch's worst-case source set sizes the
    sampled working set, so the two are directly comparable.
    """
    dims = (
        [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    )
    node_words = sum(
        num_vertices * (dims[i] + 2 * dims[i + 1])
        for i in range(num_layers)
    )
    edge_words = 3 * num_edges * num_layers
    return (node_words + edge_words) * itemsize / 2**20


def run(
    n: int = 1 << 15,
    mean_degree: int = 8,
    feature_dim: int = 32,
    hidden_dim: int = 32,
    num_classes: int = 8,
    fanout: int = 3,
    num_layers: int = 2,
    batch_size: int = 128,
    epochs: int = 2,
    seed: int | None = None,
    model: str = "gat",
) -> dict:
    """Train a sampled A-GNN on a power-law graph; return the record.

    ``seed=None`` resolves ``$REPRO_SEED`` (the determinism matrix
    relies on this): graph, features, labels, model init and the
    sampling stream all derive from the one seed, so the whole record
    is a pure function of the arguments.
    """
    from repro.bench.harness import make_graph
    from repro.models import build_model
    from repro.training.loss import SoftmaxCrossEntropyLoss
    from repro.training.minibatch import MinibatchTrainer
    from repro.training.optim import SGD
    from repro.util.rng import make_rng, repro_seed_default

    seed = repro_seed_default() if seed is None else int(seed)
    rng = make_rng(seed)
    a = make_graph("powerlaw", n, mean_degree * n, seed=seed)
    a = a.astype(np.float32)
    h = rng.normal(size=(n, feature_dim)).astype(np.float32)
    labels = rng.integers(0, num_classes, n)

    gnn = build_model(
        model, feature_dim, hidden_dim, num_classes,
        num_layers=num_layers, seed=seed, dtype=np.float32,
    )
    trainer = MinibatchTrainer(
        gnn, SoftmaxCrossEntropyLoss(), SGD(0.05),
        fanouts=(fanout,) * num_layers, batch_size=batch_size,
        shuffle=True, seed=seed,
    )
    t0 = time.perf_counter()
    result = trainer.fit(a, h, labels, epochs=epochs, full_eval=False)
    total_s = time.perf_counter() - t0

    # Worst-case source-set size of one batch: every hop multiplies by
    # (fanout + 1) before deduplication caps it at n.
    batch_sources = min(n, batch_size * (fanout + 1) ** num_layers)
    full_mb = activation_footprint_mb(
        n, a.nnz, feature_dim, hidden_dim, num_classes, num_layers
    )
    sampled_mb = activation_footprint_mb(
        batch_sources,
        batch_sources * fanout,
        feature_dim, hidden_dim, num_classes, num_layers,
    )
    return {
        "meta": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "model": model,
            "n": int(n),
            "num_edges": int(a.nnz),
            "feature_dim": int(feature_dim),
            "hidden_dim": int(hidden_dim),
            "num_classes": int(num_classes),
            "fanout": int(fanout),
            "num_layers": int(num_layers),
            "batch_size": int(batch_size),
            "epochs": int(epochs),
            "seed": int(seed),
        },
        "full_batch_activation_mb": round(full_mb, 3),
        "sampled_batch_activation_mb": round(sampled_mb, 3),
        "scale_ratio": round(full_mb / sampled_mb, 3),
        "sampled_edges": int(result.sampled_edges),
        "total_s": round(total_s, 4),
        "ms_per_epoch": round(total_s / epochs * 1e3, 3),
        "peak_rss_mb": round(peak_rss_mb(), 3),
        "losses": result.batch_losses,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sampled GAT training past the full-batch ceiling."
    )
    parser.add_argument("--n", type=int, default=1 << 15)
    parser.add_argument("--degree", type=int, default=8,
                        help="mean degree of the power-law graph")
    parser.add_argument("--feat", type=int, default=32)
    parser.add_argument("--hidden", type=int, default=32)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--fanout", type=int, default=3)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--model", default="gat")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="defaults to $REPRO_SEED (else 0)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the full JSON record to this path",
    )
    parser.add_argument(
        "--losses-only", action="store_true",
        help="print one batch loss per line and nothing else "
        "(the determinism-diff format)",
    )
    args = parser.parse_args(argv)

    record = run(
        n=args.n, mean_degree=args.degree, feature_dim=args.feat,
        hidden_dim=args.hidden, num_classes=args.classes,
        fanout=args.fanout, num_layers=args.layers,
        batch_size=args.batch_size, epochs=args.epochs,
        seed=args.seed, model=args.model,
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n")
    if args.losses_only:
        for loss in record["losses"]:
            print(repr(loss))
        return 0
    print(json.dumps({k: v for k, v in record.items() if k != "losses"},
                     indent=2))
    if args.out is not None:
        print(f"record written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
