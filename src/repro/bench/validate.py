"""Validation against the reference implementation (artifact parity).

The artifact's model files "accommodate code for validation with the
reference implementation": each distributed run can be checked against
the single-node CPU path. This module packages that check —
:func:`validate_model` runs inference and a training step through both
the 1.5D global engine and the local-formulation engine and reports
maximum relative errors against the single-node reference; the
``--validate`` flag of ``repro.bench.unified_bench`` invokes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dist_local import dist_local_inference
from repro.distributed.api import distributed_inference, distributed_train
from repro.models import build_model, normalize_adjacency
from repro.tensor.csr import CSRMatrix
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer
from repro.util.rng import make_rng

__all__ = ["ValidationReport", "validate_model"]


@dataclass
class ValidationReport:
    """Maximum relative errors of each engine vs. the reference."""

    model: str
    p: int
    inference_global: float
    inference_local: float
    training_global: float
    tolerance: float = 1e-5

    @property
    def passed(self) -> bool:
        return max(
            self.inference_global, self.inference_local,
            self.training_global,
        ) < self.tolerance

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.model} p={self.p}: "
            f"inference global={self.inference_global:.2e} "
            f"local={self.inference_local:.2e} "
            f"training global={self.training_global:.2e}"
        )


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(1.0, float(np.abs(b).max()))
    return float(np.abs(np.asarray(a) - np.asarray(b)).max()) / scale


def validate_model(
    model_name: str,
    a: CSRMatrix,
    k: int = 8,
    layers: int = 2,
    p: int = 4,
    seed: int = 0,
    epochs: int = 2,
) -> ValidationReport:
    """Cross-check both distributed engines against the reference.

    Runs in float64 so agreement is limited only by reduction-order
    noise; any algorithmic divergence shows up far above the 1e-5
    tolerance.
    """
    rng = make_rng(seed)
    n = a.shape[0]
    adjacency = (
        normalize_adjacency(a) if model_name.lower() == "gcn" else a
    )
    features = rng.normal(0, 1, (n, k))
    labels = rng.integers(0, max(2, min(8, k)), n)
    out_dim = max(2, min(8, k))

    reference = build_model(
        model_name, k, k, out_dim, num_layers=layers, seed=seed,
        dtype=np.float64,
    ).forward(adjacency, features, training=False)

    global_out = distributed_inference(
        model_name, adjacency, features, k, out_dim, num_layers=layers,
        p=p, seed=seed, dtype=np.float64,
    ).output
    local_out, _ = dist_local_inference(
        model_name, adjacency, features, k, out_dim, num_layers=layers,
        p=p, seed=seed, dtype=np.float64,
    )

    ref_model = build_model(model_name, k, k, out_dim, num_layers=layers,
                            seed=seed, dtype=np.float64)
    trainer = Trainer(ref_model, SoftmaxCrossEntropyLoss(), SGD(1e-3))
    ref_losses = trainer.fit(adjacency, features, labels, epochs=epochs)
    dist_losses = distributed_train(
        model_name, adjacency, features, labels, k, out_dim,
        num_layers=layers, p=p, epochs=epochs, lr=1e-3, seed=seed,
        dtype=np.float64, collect_output=False,
    ).losses
    training_err = max(
        abs(r - d) / max(1.0, abs(r))
        for r, d in zip(ref_losses.losses, dist_losses)
    )
    return ValidationReport(
        model=model_name.upper(),
        p=p,
        inference_global=_rel_err(global_out, reference),
        inference_local=_rel_err(local_out, reference),
        training_global=training_err,
    )
