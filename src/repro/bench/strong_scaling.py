"""Real wall-clock strong scaling on the process-parallel backend.

The figure benchmarks report *modeled* time computed from exact traffic
accounting because threaded ranks share the GIL and one host's clock.
The process backend removes that limitation: ranks are OS processes on
real cores, so the Fig. 6 strong-scaling claim can additionally be
checked against measured seconds. This module provides the picklable
rank program (spawn requires module-level functions) and a small driver
that sweeps ``p`` and reports measured speedup over ``p = 1``.

What is timed: the full-batch training loop only — graph partitioning,
model construction and interpreter start-up are excluded by a barrier
on each side of the loop, mirroring how the paper times epochs, not job
launch.
"""

from __future__ import annotations

import os
import time
from typing import Any

import numpy as np

from repro.distributed.api import _block_loss_gradient, _loss_denominator
from repro.distributed.model import build_dist_model
from repro.distributed.schedule import overlap_default
from repro.distributed.partition import (
    block_range,
    distribute_adjacency,
    distribute_features,
)
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.runtime.executor import run_spmd
from repro.runtime.grid import square_grid
from repro.tensor.csr import CSRMatrix
from repro.util.rng import make_rng

__all__ = [
    "MEDIUM_ER",
    "can_show_speedup",
    "timed_training_program",
    "measure_strong_scaling",
]

#: The "medium ER" configuration of the process-backend strong-scaling
#: benchmark: large enough that per-rank edge work dominates transport,
#: small enough for CI (a few seconds per sweep point).
MEDIUM_ER: dict[str, Any] = {
    "n": 2048,
    "density": 0.02,
    "k": 32,
    "layers": 2,
    "epochs": 3,
    "seed": 7,
}


def can_show_speedup(p: int) -> bool:
    """Whether this host can exhibit real speedup at ``p`` ranks.

    A host with fewer cores than ranks time-slices the processes, so
    wall-clock speedup (and the overlap win) is physically impossible
    there; callers gate speedup *assertions* on this and merely record
    the numbers otherwise.
    """
    return (os.cpu_count() or 1) >= p


def timed_training_program(
    comm,
    model_name: str,
    a: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    hidden_dim: int,
    out_dim: int,
    num_layers: int,
    epochs: int,
    lr: float,
    seed: int,
    dtype,
    overlap: bool | None = None,
):
    """Full-batch training with the epoch loop timed inside the rank.

    Returns ``(loop_seconds, losses)`` so the driver can take the
    slowest rank's time and check loss parity across ``p``.
    """
    n = features.shape[0]
    grid = square_grid(comm)
    a_block = distribute_adjacency(a, grid)
    h_block = distribute_features(features, grid)
    c0, c1 = block_range(n, grid.py, grid.col)
    labels_block = labels[c0:c1]
    model = build_dist_model(
        grid, model_name, features.shape[1], hidden_dim, out_dim,
        num_layers=num_layers, seed=seed, dtype=dtype, overlap=overlap,
    )
    denom = _loss_denominator("ce", None, n, out_dim)
    comm.barrier()
    start = time.perf_counter()
    losses: list[float] = []
    for _epoch in range(epochs):
        out_block = model.forward(
            a_block, h_block, counter=comm.stats.flops, training=True
        )
        local_sum, grad_block = _block_loss_gradient(
            "ce", out_block, labels_block, None, denom
        )
        contribution = local_sum if grid.row == 0 else 0.0
        losses.append(
            float(grid.comm.allreduce(np.array(contribution))) / denom
        )
        grads = model.backward(grad_block, counter=comm.stats.flops)
        model.apply_gradients(grads, lr)
    comm.barrier()
    elapsed = time.perf_counter() - start
    model.zero_caches()
    return elapsed, losses


def measure_strong_scaling(
    model_name: str = "AGNN",
    backend: str = "process",
    p_list: tuple[int, ...] = (1, 4),
    n: int = MEDIUM_ER["n"],
    density: float = MEDIUM_ER["density"],
    k: int = MEDIUM_ER["k"],
    layers: int = MEDIUM_ER["layers"],
    epochs: int = MEDIUM_ER["epochs"],
    seed: int = MEDIUM_ER["seed"],
    lr: float = 0.01,
    timeout: float = 600.0,
    overlap: bool | None = None,
) -> list[dict[str, Any]]:
    """Sweep ``p`` on one backend; report measured seconds and speedup.

    Each row carries the slowest rank's epoch-loop seconds
    (``train_s``), the speedup relative to the sweep's ``p = 1`` point,
    the BSP communication volume, the per-rank wait-time maximum (the
    number the ``overlap`` schedules shrink), and the first epoch loss
    (a parity handle: it must agree across ``p``, across backends, and
    across overlap modes).
    """
    resolved_overlap = overlap_default() if overlap is None else overlap
    m = max(n, int(density * n * n))
    a = prepare_adjacency(erdos_renyi(n, m, seed=seed), dtype=np.float64)
    rng = make_rng(seed + 1)
    features = rng.normal(size=(n, k)).astype(np.float64)
    labels = rng.integers(0, 4, size=n)

    rows: list[dict[str, Any]] = []
    t1 = None
    for p in p_list:
        result = run_spmd(
            p, timed_training_program, timeout=timeout, backend=backend,
            model_name=model_name, a=a, features=features, labels=labels,
            hidden_dim=k, out_dim=4, num_layers=layers, epochs=epochs,
            lr=lr, seed=seed, dtype=np.float64, overlap=resolved_overlap,
        )
        train_s = max(elapsed for elapsed, _losses in result.values)
        losses = result.values[0][1]
        if p == 1:
            t1 = train_s
        max_wall = result.stats.max_wall_s
        rows.append({
            "model": model_name,
            "backend": result.backend,
            "overlap": resolved_overlap,
            "p": p,
            "n": n,
            "m": m,
            "k": k,
            "layers": layers,
            "epochs": epochs,
            "train_s": train_s,
            "speedup_vs_p1": (t1 / train_s) if t1 else None,
            "comm_words": result.stats.max_words_sent,
            "max_wall_s": max_wall,
            "max_wait_s": result.stats.max_wait_s,
            "wait_fraction": (
                result.stats.max_wait_s / max_wall if max_wall > 0 else 0.0
            ),
            "first_loss": losses[0],
        })
    return rows
