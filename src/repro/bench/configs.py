"""Per-figure benchmark configurations, scaled to the simulated cluster.

The artifact's parameter tables (its Tables 1–3) pin each figure's
(n, m, k, node-count) grid; here each figure keeps its *structure* —
which quantities sweep, which stay fixed, the density ladder
1% / 0.1% / 0.01%, n ∝ sqrt(p) weak scaling — while n shrinks by a
constant factor so a laptop-scale simulation finishes in minutes (the
``scale`` knob of :func:`scaled_figure` restores larger sizes when more
time is available).

Scaling map (paper → default here):
    Fig. 6 strong scaling: n = 131k/262k/1M/2M, p ≤ 256
        → n = 2^12, p ∈ {1, 4, 16}
    Fig. 7 weak scaling (Kronecker + ER): n0 = 131k → n0 = 2^10
    Fig. 8 MAKG 111M vertices → power-law 2^13 vertices, 29 edges/vertex
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FigureConfig", "FIGURE_CONFIGS", "scaled_figure"]

MODELS = ("VA", "AGNN", "GAT")
P_GRID = (1, 4, 16)


@dataclass(frozen=True)
class FigureConfig:
    """One figure's sweep description."""

    figure: str
    description: str
    graph_kind: str
    task: str
    scaling: str                      # "strong" | "weak"
    base_n: int
    densities: tuple[float, ...]
    ks: tuple[int, ...]
    layers: int = 3
    models: tuple[str, ...] = MODELS
    p_grid: tuple[int, ...] = P_GRID
    formulations: tuple[str, ...] = ("global", "minibatch")

    def points(self, scale: float = 1.0):
        """Yield (model, formulation, n, m, k, p) sweep points.

        Strong scaling fixes (n, m) and sweeps p; weak scaling grows
        n ∝ sqrt(p) at fixed density, so m (= rho n^2) grows ∝ p —
        exactly the paper's setup.
        """
        for model in self.models:
            for formulation in self.formulations:
                for k in self.ks:
                    for rho in self.densities:
                        for p in self.p_grid:
                            if self.scaling == "strong":
                                n = int(self.base_n * scale)
                            else:
                                n = int(self.base_n * scale * (p ** 0.5))
                            m = max(n, int(rho * n * n))
                            yield (model, formulation, n, m, k, p, rho)


FIGURE_CONFIGS: dict[str, FigureConfig] = {
    "fig6_k16": FigureConfig(
        figure="fig6_k16",
        description="Strong scaling, Kronecker, training, k=16 (Fig. 6 a-d)",
        graph_kind="kronecker",
        task="training",
        scaling="strong",
        base_n=1 << 12,
        # Degree-preserving ladder: the paper's rho in {1%, 0.1%, 0.01%}
        # at n = 131k..262k corresponds to average degrees ~{1310, 131,
        # 13} relative to DistDGL's fixed fan-out budget; at n = 4096 the
        # same degree regimes are d in {1024, 96, 8}.
        densities=(1024 / 4096, 96 / 4096, 8 / 4096),
        ks=(16,),
    ),
    "fig6_k128": FigureConfig(
        figure="fig6_k128",
        description="Strong scaling, Kronecker, training, k=128 (Fig. 6 e-h)",
        graph_kind="kronecker",
        task="training",
        scaling="strong",
        base_n=1 << 12,
        densities=(1024 / 4096, 8 / 4096),
        ks=(128,),
    ),
    "fig8_weak_kron": FigureConfig(
        figure="fig8_weak_kron",
        description="Weak scaling, Kronecker, training, k=16 (Fig. 8)",
        graph_kind="kronecker",
        task="training",
        scaling="weak",
        base_n=1 << 11,
        # Chosen so the per-rank edge work (rho * n0^2 edges) amortises
        # message latency, as the paper's 131k-vertex bases do.
        densities=(0.02, 0.002),
        ks=(16,),
    ),
    "fig7_weak_er": FigureConfig(
        figure="fig7_weak_er",
        description=(
            "Weak scaling, Erdos-Renyi, inference, global vs local "
            "(Fig. 7, three rightmost plots / Sec. 8.4)"
        ),
        graph_kind="uniform",
        task="inference",
        scaling="weak",
        base_n=1 << 10,
        densities=(0.01, 0.001, 0.0001),
        ks=(16,),
        models=("VA", "AGNN", "GAT", "GCN"),
        formulations=("global", "local"),
    ),
    "fig7_makg": FigureConfig(
        figure="fig7_makg",
        description=(
            "Strong scaling on the MAKG-like power-law graph, inference "
            "+ training (Fig. 7, two leftmost plots)"
        ),
        graph_kind="powerlaw",
        task="training",
        scaling="strong",
        base_n=1 << 13,
        densities=(29.0 / (1 << 13),),  # 29 edges per vertex, MAKG-like
        ks=(16, 64),
        formulations=("global",),
    ),
}


def scaled_figure(name: str, scale: float = 1.0) -> list[tuple]:
    """All sweep points of a figure at the given size multiplier."""
    config = FIGURE_CONFIGS[name]
    return list(config.points(scale))
