"""Figure 8 — weak scaling of training on Kronecker graphs.

Paper setup: n grows ∝ sqrt(node count) at fixed density (so m grows
∝ node count), k = 16, L = 3, training; global formulation vs.
DistDGL. Scaled here to n0 = 2^10 and p ∈ {1, 4, 16}.

Reproduced claims (asserted):

* The global formulation weak-scales well: parallel efficiency
  (t(p=1) / t(p)) under proportional work growth stays above ~35%
  at p=16 (the paper reports VA retaining up to 57% at 512 nodes,
  under heavy Kronecker load imbalance).
* Communication stays a minority share of modeled time at scale for
  the densest configuration ("the communication does not become the
  bottleneck").
"""

from __future__ import annotations


from benchmarks.conftest import by, emit, run_point, sweep_benchmark
from repro.bench.configs import FIGURE_CONFIGS


def _sweep():
    config = FIGURE_CONFIGS["fig8_weak_kron"]
    rows = []
    for model, formulation, n, m, k, p, rho in config.points():
        rows.append(
            run_point(
                config.figure, model, formulation, config.task,
                config.graph_kind, n, m, k, p, layers=config.layers,
                rho=rho,
            )
        )
    return rows


def test_fig8_weak_kronecker(sweep_benchmark):
    rows = sweep_benchmark(_sweep)
    emit(rows, "fig8_weak_kron.csv")

    for model in ("VA", "AGNN", "GAT"):
        series = by(rows, model=model, formulation="global")
        rhos = sorted({r.extra["rho"] for r in series})
        dense = [r for r in series if r.extra["rho"] == rhos[-1]]
        t1 = next(r.modeled_s for r in dense if r.p == 1)
        t16 = next(r.modeled_s for r in dense if r.p == 16)
        # Weak scaling: per-rank work is constant, so ideal is t16 == t1;
        # efficiency = t1 / t16.
        efficiency = t1 / t16
        assert efficiency > 0.35, (
            f"{model}: weak-scaling efficiency too low ({efficiency:.2f})"
        )
        # Communication is not the bottleneck at the densest point.
        r16 = next(r for r in dense if r.p == 16)
        assert r16.modeled_comm_s < 0.75 * r16.modeled_s, (
            f"{model}: communication dominates at p=16 "
            f"({r16.modeled_comm_s:.2e} of {r16.modeled_s:.2e})"
        )
