#!/usr/bin/env python
"""Compare kernel wall-clock against the committed baseline.

Thin CLI over :mod:`repro.bench.regress`:

.. code-block:: console

   $ PYTHONPATH=src python benchmarks/compare_bench.py --update
   $ PYTHONPATH=src python benchmarks/compare_bench.py

Writes/reads ``benchmarks/BENCH_kernels.json`` and exits non-zero when
any kernel is more than 20% slower than the baseline (tunable with
``--threshold``).
"""

from __future__ import annotations

import sys

from repro.bench.regress import main

if __name__ == "__main__":
    sys.exit(main())
