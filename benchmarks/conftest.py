"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark file regenerates one figure of the paper: it sweeps that
figure's (model, formulation, n, m, k, p) grid on the simulated
cluster, prints the series the figure plots (modeled time and
communication volume per configuration), appends them to
``benchmarks/results/unified_results.csv``, and asserts the figure's
qualitative claims (who wins, how the gap moves). Wall-clock of a
representative configuration is measured through the pytest-benchmark
fixture so ``--benchmark-only`` produces a timing table as well.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.bench.harness import BenchRow, make_graph, run_config, write_csv

RESULTS_DIR = Path(__file__).parent / "results"


@functools.lru_cache(maxsize=32)
def cached_graph(kind: str, n: int, m: int, seed: int = 0):
    """Graphs are expensive to generate; share them across sweep points."""
    return make_graph(kind, n, m, seed=seed)


def run_point(
    figure: str,
    model: str,
    formulation: str,
    task: str,
    kind: str,
    n: int,
    m: int,
    k: int,
    p: int,
    layers: int = 3,
    seed: int = 0,
    minibatch_fraction: float = 0.125,
    minibatch_fanout: int = 10,
    rho: float | None = None,
) -> BenchRow:
    """Run one sweep point (graph cached by parameters).

    ``minibatch_fraction`` scales the DistDGL-like batch with the graph,
    preserving the paper's 16k-of-131k ratio at reduced n; the fan-out
    stays at DistDGL's absolute per-hop budget of 10, and the density
    ladder preserves the paper's average-degree-vs-fan-out regimes (see
    ``repro.bench.configs``).
    """
    graph = cached_graph(kind, n, m, seed)
    return run_config(
        figure=figure,
        model=model,
        formulation=formulation,
        task=task,
        a=graph,
        k=k,
        layers=layers,
        p=p,
        seed=seed,
        minibatch_size=max(8, int(graph.shape[0] * minibatch_fraction)),
        minibatch_fanout=minibatch_fanout,
        extra_info=None if rho is None else {"rho": rho},
    )


def emit(rows: list[BenchRow], csv_name: str) -> None:
    """Print figure series and append them to the results CSV."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = (
        f"{'figure':<14} {'model':<5} {'form':<10} {'task':<9} "
        f"{'n':>7} {'m':>9} {'k':>4} {'p':>3} "
        f"{'modeled_s':>12} {'comm_words':>11}"
    )
    print()
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.figure:<14} {row.model:<5} {row.formulation:<10} "
            f"{row.task:<9} {row.n:>7} {row.m:>9} {row.k:>4} {row.p:>3} "
            f"{row.modeled_s:>12.6f} {row.comm_words:>11}"
        )
    write_csv(rows, RESULTS_DIR / csv_name)


def by(rows, **filters):
    """Select rows matching attribute filters."""
    out = rows
    for key, value in filters.items():
        out = [r for r in out if getattr(r, key) == value]
    return out


@pytest.fixture
def sweep_benchmark(benchmark):
    """Run a full sweep exactly once under the benchmark timer."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
