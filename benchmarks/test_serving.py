"""Serving latency/throughput on a power-law graph (recorded).

Runs the three-phase serving harness — sequential per-request
baseline, coalesced closed loop at 64 concurrent requesters, Poisson
open loop — and writes the record to
``benchmarks/results/serving_latency.json`` (the CI ``serving`` job's
artifact). Wall-clock latencies are *recorded, not gated*; the gated
claims are the structural ones: the coalesced path clears the
acceptance floor of 3x the sequential throughput (measured margin is
typically >10x, so the gate has generous slack on slow runners), the
cache actually hits on hub-heavy traffic, and every phase completed
its full request count.
"""

from __future__ import annotations

import json
import math

from benchmarks.conftest import RESULTS_DIR
from repro.bench.serving_latency import run


def test_serving_latency_powerlaw(sweep_benchmark):
    record = sweep_benchmark(lambda: run(
        n=1 << 14, mean_degree=8, feature_dim=32, hidden_dim=32,
        num_classes=8, num_layers=2, model="gat", fanout=8,
        requesters=64, requests_per_requester=8,
        rate_hz=500.0, open_loop_requests=512, seed=0,
    ))

    # The acceptance floor: coalesced serving at 64 concurrent
    # requesters beats sequential per-request forwards by >= 3x.
    assert record["config"]["requesters"] == 64
    assert record["coalesced"]["speedup_vs_sequential"] >= 3.0

    # Every phase served its whole trace and produced finite numbers.
    total = (record["config"]["requesters"]
             * record["config"]["requests_per_requester"])
    assert record["sequential"]["requests"] == total
    assert record["coalesced"]["requests"] == total
    assert record["open_loop"]["requests"] == 512
    for phase in ("sequential", "coalesced", "open_loop"):
        assert record[phase]["throughput_rps"] > 0.0
        assert math.isfinite(record[phase]["p99_ms"])
        assert record[phase]["p50_ms"] <= record[phase]["p99_ms"]

    # Hub-heavy traffic against the activation cache must actually hit.
    assert record["coalesced"]["cache_hit_rate"] > 0.0
    assert record["open_loop"]["cache_hit_rate"] > 0.0

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "serving_latency.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nserving: seq={record['sequential']['throughput_rps']:.0f}rps "
        f"coalesced={record['coalesced']['throughput_rps']:.0f}rps "
        f"({record['coalesced']['speedup_vs_sequential']:.1f}x) "
        f"open-loop p50={record['open_loop']['p50_ms']:.2f}ms "
        f"p99={record['open_loop']['p99_ms']:.2f}ms "
        f"hit={record['open_loop']['cache_hit_rate']:.0%} -> {out}"
    )
