"""Single-node kernel microbenchmarks (Table 2's compute vocabulary).

Times SpMM (both backends), the SDDMM family, the graph softmax and
the composite SpMMM/MSpMM kernels on a fixed Erdős–Rényi operand set —
the per-kernel baseline every higher-level measurement decomposes into.

The ``test_*_warm_cache_speedup`` tests assert the amortization claim
of the pattern-structure cache directly: running a kernel on a matrix
whose pattern caches are warm must be at least 1.5× faster than the
cold path (a first-touch pattern paying structure validation,
``expand_rows`` and transpose construction).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import make_graph
from repro.tensor.csr import CSRMatrix
from repro.tensor.kernels import (
    masked_row_softmax,
    mspmm,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    spmm,
    spmmm,
)

N, K = 4096, 64


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = make_graph("uniform", N, 16 * N, seed=0)
    h = rng.normal(size=(N, K)).astype(np.float32)
    w = rng.normal(size=(K, K)).astype(np.float32)
    u = rng.normal(size=N).astype(np.float32)
    return a, h, w, u


def test_spmm_scipy(benchmark, operands):
    a, h, _, _ = operands
    out = benchmark(lambda: spmm(a, h, backend="scipy"))
    assert out.shape == (N, K)


def test_spmm_reference(benchmark, operands):
    a, h, _, _ = operands
    out = benchmark(lambda: spmm(a, h, backend="reference"))
    assert out.shape == (N, K)


def test_sddmm_dot(benchmark, operands):
    a, h, _, _ = operands
    values = benchmark(lambda: sddmm_dot(a, h, h))
    assert values.shape == (a.nnz,)


def test_sddmm_add(benchmark, operands):
    a, _, _, u = operands
    values = benchmark(lambda: sddmm_add(a, u, u))
    assert values.shape == (a.nnz,)


def test_sddmm_cosine(benchmark, operands):
    a, h, _, _ = operands
    values, _ = benchmark(lambda: sddmm_cosine(a, h))
    assert values.shape == (a.nnz,)


def test_graph_softmax(benchmark, operands):
    a, _, _, _ = operands
    rng = np.random.default_rng(1)
    scores = a.with_data(rng.normal(size=a.nnz).astype(np.float32))
    out = benchmark(lambda: masked_row_softmax(scores))
    assert np.all(np.isfinite(out.data))


def test_spmmm(benchmark, operands):
    a, h, w, _ = operands
    out = benchmark(lambda: spmmm(a, h, w))
    assert out.shape == (N, K)


def test_mspmm(benchmark, operands):
    a, h, _, _ = operands
    out = benchmark(lambda: mspmm(h.T, a, h))
    assert out.shape == (K, K)


def test_backends_agree(benchmark, operands):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a, h, _, _ = operands
    assert np.allclose(
        spmm(a, h, backend="scipy"), spmm(a, h, backend="reference"),
        atol=1e-4,
    )


# ----------------------------------------------------------------------
# Warm-cache speedups over the pre-cache implementations
# ----------------------------------------------------------------------
# ``_sddmm_dot_uncached`` and ``_transpose_uncached`` replicate, line
# for line, what the library did before the pattern-structure cache:
# the COO row vector recomputed per call, fancy-indexed gather
# temporaries, 1M-entry chunks, and an O(nnz log nnz) argsort
# transpose. The tests assert the cached hot path beats them ≥1.5×.


def _best_time(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _sddmm_dot_uncached(pattern, x, y, chunk=1 << 20):
    rows = np.repeat(
        np.arange(pattern.shape[0], dtype=np.int64), np.diff(pattern.indptr)
    )
    cols = pattern.indices
    out = np.empty(pattern.nnz, dtype=np.result_type(x, y))
    for start in range(0, pattern.nnz, chunk):
        stop = min(start + chunk, pattern.nnz)
        np.einsum(
            "ij,ij->i",
            x[rows[start:stop]],
            y[cols[start:stop]],
            out=out[start:stop],
        )
    return out


def _transpose_uncached(m):
    n_rows, n_cols = m.shape
    rows = np.repeat(
        np.arange(n_rows, dtype=np.int64), np.diff(m.indptr)
    )
    key = m.indices * np.int64(n_rows) + rows
    perm = np.argsort(key, kind="stable")
    indptr_t = np.zeros(n_cols + 1, dtype=np.int64)
    np.add.at(indptr_t, m.indices + 1, 1)
    np.cumsum(indptr_t, out=indptr_t)
    return CSRMatrix(indptr_t, rows[perm], m.data[perm], (n_cols, n_rows))


def test_sddmm_warm_cache_speedup(benchmark, operands):
    """Cached/pooled SDDMM ≥1.5× faster than the pre-cache kernel."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a, h, _, _ = operands
    assert np.allclose(sddmm_dot(a, h, h), _sddmm_dot_uncached(a, h, h))
    t_warm = _best_time(lambda: sddmm_dot(a, h, h))
    t_old = _best_time(lambda: _sddmm_dot_uncached(a, h, h))
    assert t_old >= 1.5 * t_warm, (
        f"cached {t_warm * 1e3:.3f} ms vs uncached {t_old * 1e3:.3f} ms "
        f"({t_old / t_warm:.2f}x)"
    )


@pytest.mark.benchcompare
def test_multihead_batched_speedup(benchmark):
    """Head-batched GAT layer ≥2× faster than the per-head loop.

    Eight heads on a small graph — the regime the batching targets:
    the per-head loop re-pays kernel dispatch, structure-cache lookups
    and workspace checkout once per head, while the batched path walks
    the interned CSR pattern once for all heads. Warm structure cache,
    forward + backward, float64. Timed with looped batches (like the
    ``benchcompare`` suite) so sub-millisecond steps are not noise.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.models.gat import MultiHeadGATLayer

    n, heads, d, f = 64, 8, 8, 16
    a = make_graph("uniform", n, 4 * n, seed=0).astype(np.float64)
    rng = np.random.default_rng(0)
    h = rng.normal(size=(n, f))
    g = rng.normal(size=(n, heads * d))
    batched = MultiHeadGATLayer(f, d, heads=heads, seed=3,
                                dtype=np.float64, batched=True)
    per_head = MultiHeadGATLayer(f, d, heads=heads, seed=3,
                                 dtype=np.float64, batched=False)

    def step(layer):
        out, cache = layer.forward(a, h)
        layer.backward(cache, g)
        return out

    out_b, out_p = step(batched), step(per_head)  # warm caches
    assert np.allclose(out_b, out_p, rtol=1e-10, atol=1e-12)

    def timed(layer, repeats=9, iters=12):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                step(layer)
            best = min(best, (time.perf_counter() - t0) / iters)
        return best

    t_batched = timed(batched)
    t_per_head = timed(per_head)
    assert t_per_head >= 2.0 * t_batched, (
        f"batched {t_batched * 1e3:.3f} ms vs per-head "
        f"{t_per_head * 1e3:.3f} ms ({t_per_head / t_batched:.2f}x)"
    )


def test_tracing_disabled_overhead_unmeasurable(benchmark, operands):
    """The null-tracer fast path must not tax the kernel bench gate.

    ``spmm`` is wrapped by ``@traced``; with tracing disabled the
    wrapper is one accessor call and one attribute check, so timing the
    public entry point against the unwrapped function must show no
    measurable difference at this resolution (generous 1.25x bound to
    absorb scheduler noise — the true overhead is ~100ns on a ~ms
    kernel).
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.obs.tracer import tracer

    assert not tracer().enabled, "bench must run with tracing disabled"
    a, h, _, _ = operands
    raw = spmm.__wrapped__
    assert np.array_equal(spmm(a, h), raw(a, h))  # warm caches
    t_wrapped = _best_time(lambda: spmm(a, h))
    t_raw = _best_time(lambda: raw(a, h))
    assert t_wrapped <= 1.25 * t_raw, (
        f"traced-off {t_wrapped * 1e3:.3f} ms vs raw {t_raw * 1e3:.3f} ms "
        f"({t_wrapped / t_raw:.2f}x)"
    )


def test_transpose_perm_warm_cache_speedup(benchmark, operands):
    """Cached transpose permutation ≥1.5× faster than per-call argsort."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a, _, _, _ = operands
    ref = _transpose_uncached(a)
    warm = a.transpose()  # builds transposed pattern + permutation once
    assert np.array_equal(warm.indices, ref.indices)
    assert np.array_equal(warm.data, ref.data)
    t_warm = _best_time(lambda: a.transpose())
    t_old = _best_time(lambda: _transpose_uncached(a))
    assert t_old >= 1.5 * t_warm, (
        f"cached {t_warm * 1e3:.3f} ms vs uncached {t_old * 1e3:.3f} ms "
        f"({t_old / t_warm:.2f}x)"
    )
