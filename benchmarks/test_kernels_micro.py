"""Single-node kernel microbenchmarks (Table 2's compute vocabulary).

Times SpMM (both backends), the SDDMM family, the graph softmax and
the composite SpMMM/MSpMM kernels on a fixed Erdős–Rényi operand set —
the per-kernel baseline every higher-level measurement decomposes into.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import make_graph
from repro.tensor.kernels import (
    masked_row_softmax,
    mspmm,
    sddmm_add,
    sddmm_cosine,
    sddmm_dot,
    spmm,
    spmmm,
)

N, K = 4096, 64


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = make_graph("uniform", N, 16 * N, seed=0)
    h = rng.normal(size=(N, K)).astype(np.float32)
    w = rng.normal(size=(K, K)).astype(np.float32)
    u = rng.normal(size=N).astype(np.float32)
    return a, h, w, u


def test_spmm_scipy(benchmark, operands):
    a, h, _, _ = operands
    out = benchmark(lambda: spmm(a, h, backend="scipy"))
    assert out.shape == (N, K)


def test_spmm_reference(benchmark, operands):
    a, h, _, _ = operands
    out = benchmark(lambda: spmm(a, h, backend="reference"))
    assert out.shape == (N, K)


def test_sddmm_dot(benchmark, operands):
    a, h, _, _ = operands
    values = benchmark(lambda: sddmm_dot(a, h, h))
    assert values.shape == (a.nnz,)


def test_sddmm_add(benchmark, operands):
    a, _, _, u = operands
    values = benchmark(lambda: sddmm_add(a, u, u))
    assert values.shape == (a.nnz,)


def test_sddmm_cosine(benchmark, operands):
    a, h, _, _ = operands
    values, _ = benchmark(lambda: sddmm_cosine(a, h))
    assert values.shape == (a.nnz,)


def test_graph_softmax(benchmark, operands):
    a, _, _, _ = operands
    rng = np.random.default_rng(1)
    scores = a.with_data(rng.normal(size=a.nnz).astype(np.float32))
    out = benchmark(lambda: masked_row_softmax(scores))
    assert np.all(np.isfinite(out.data))


def test_spmmm(benchmark, operands):
    a, h, w, _ = operands
    out = benchmark(lambda: spmmm(a, h, w))
    assert out.shape == (N, K)


def test_mspmm(benchmark, operands):
    a, h, _, _ = operands
    out = benchmark(lambda: mspmm(h.T, a, h))
    assert out.shape == (K, K)


def test_backends_agree(benchmark, operands):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a, h, _, _ = operands
    assert np.allclose(
        spmm(a, h, backend="scipy"), spmm(a, h, backend="reference"),
        atol=1e-4,
    )
