"""Ablation — the Phi∘⊕ composition order (Section 4.4).

For linear Phi the two orders are mathematically equal but
computationally different: *project-first* runs the SpMM at width
``k_out``, *aggregate-first* at width ``k_in``. The cheaper order
therefore flips with the k_in/k_out ratio — which is exactly why the
paper's formulation leaves the order to the model designer. The bench
measures both orders in both regimes and asserts the flip (on flop
counts, which are deterministic) plus agreement of results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import make_graph
from repro.models.va import VALayer
from repro.util.counters import FlopCounter

N = 2048


@pytest.fixture(scope="module")
def graph():
    return make_graph("uniform", N, 16 * N, seed=0)


def _flops(order, in_dim, out_dim, graph, h):
    layer = VALayer(in_dim, out_dim, order=order, seed=0, dtype=np.float32)
    counter = FlopCounter()
    layer.forward(graph, h, counter=counter, training=False)
    return counter.total


@pytest.mark.parametrize("order", ["project_first", "aggregate_first"])
@pytest.mark.parametrize(
    "dims", [(64, 8), (8, 64)], ids=["shrinking", "expanding"]
)
def test_composition_order_timing(benchmark, graph, order, dims):
    rng = np.random.default_rng(0)
    in_dim, out_dim = dims
    h = rng.normal(size=(N, in_dim)).astype(np.float32)
    layer = VALayer(in_dim, out_dim, order=order, seed=0, dtype=np.float32)
    out = benchmark(lambda: layer.forward(graph, h, training=False)[0])
    assert out.shape == (N, out_dim)


def test_cheaper_order_flips_with_dimensions(benchmark, graph):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = np.random.default_rng(0)
    # Shrinking projection (k_in=64 -> k_out=8): project first, so the
    # SpMM runs at width 8.
    h_wide = rng.normal(size=(N, 64)).astype(np.float32)
    assert _flops("project_first", 64, 8, graph, h_wide) < _flops(
        "aggregate_first", 64, 8, graph, h_wide
    )
    # Expanding projection (8 -> 64): aggregate first, SpMM at width 8.
    h_narrow = rng.normal(size=(N, 8)).astype(np.float32)
    assert _flops("aggregate_first", 8, 64, graph, h_narrow) < _flops(
        "project_first", 8, 64, graph, h_narrow
    )


def test_orders_agree_numerically(benchmark, graph):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = np.random.default_rng(0)
    h = rng.normal(size=(N, 16)).astype(np.float64)
    proj = VALayer(16, 16, order="project_first", seed=3, dtype=np.float64)
    agg = VALayer(16, 16, order="aggregate_first", seed=3, dtype=np.float64)
    agg.weight = proj.weight.copy()
    out_p, _ = proj.forward(graph, h)
    out_a, _ = agg.forward(graph, h)
    assert np.allclose(out_p, out_a, atol=1e-8)
