"""Figure 7 (three rightmost plots) — weak scaling on Erdős–Rényi
graphs: the empirical verification of the Section-7 analysis.

Paper setup: random uniform graphs at densities 1% / 0.1% / 0.01%,
inference, n ∝ sqrt(p); the global formulation vs. DistDGL (the local
formulation), plus a C-GNN (Section 8.4) showing the same volume law.

Reproduced claims (asserted):

* The local/global gap *grows consistently with density* — the paper's
  key predicted trend (Section 7.3: denser ER graphs favour the global
  view; "the difference between DistDGL and our work consistently
  decreases" as rho drops).
* The crossover sits where the theory puts it, q ≈ sqrt(p)/n: at
  p = 16 the lowest-density point lies *below* the crossover (local
  wins) and the highest-density point lies *above* it for the C-GNN
  and VA (global wins).
* Measured local halo volume matches the closed-form ER expectation of
  Section 7.3 within a modest factor.

Deviation note (recorded in EXPERIMENTS.md): our local baseline is a
*full-batch* halo-exchange engine, a strictly stronger baseline than
the mini-batch DistDGL the paper plots, so the absolute gaps here are
smaller than the paper's; the density trend and crossover position are
the theory-bearing observables and both reproduce.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import by, emit, run_point, sweep_benchmark
from repro.bench.configs import FIGURE_CONFIGS
from repro.theory import erdos_renyi_local_words


def _sweep():
    config = FIGURE_CONFIGS["fig7_weak_er"]
    rows = []
    for model, formulation, n, m, k, p, rho in config.points():
        rows.append(
            run_point(
                config.figure, model, formulation, config.task,
                config.graph_kind, n, m, k, p, layers=config.layers,
                rho=rho,
            )
        )
    return rows


def test_fig7_weak_er(sweep_benchmark):
    rows = sweep_benchmark(_sweep)
    emit(rows, "fig7_weak_er.csv")

    models = ("VA", "AGNN", "GAT", "GCN")

    def gaps(model, p):
        """local/global modeled-time ratios by increasing density."""
        candidates = by(rows, model=model, p=p)
        out = []
        for rho in sorted({r.extra["rho"] for r in candidates}):
            point = [r for r in candidates if r.extra["rho"] == rho]
            glob = min(
                r.modeled_s for r in point if r.formulation == "global"
            )
            local = min(
                r.modeled_s for r in point if r.formulation == "local"
            )
            out.append(local / glob)
        return out

    for model in models:
        for p in (4, 16):
            series = gaps(model, p)
            assert all(a < b for a, b in zip(series, series[1:])), (
                f"{model} p={p}: the local/global gap must grow "
                f"monotonically with density ({series})"
            )
    # Crossover location at p=16 (theory: q = sqrt(16)/4096 ≈ 0.001):
    # below it the local view wins, above it the global view wins for
    # the volume-lean models (C-GNN of Sec. 8.4, and VA).
    for model in ("GCN", "VA"):
        series = gaps(model, 16)
        assert series[0] < 1.0, (
            f"{model}: local should win below the crossover ({series[0]:.2f})"
        )
        assert series[-1] > 1.0, (
            f"{model}: global should win above the crossover "
            f"({series[-1]:.2f})"
        )
    # Attention models carry an extra broadcast; they must still close
    # to near-parity at the densest point.
    for model in ("AGNN", "GAT"):
        series = gaps(model, 16)
        assert series[-1] > 0.8, (
            f"{model}: expected near-parity at the densest point "
            f"({series[-1]:.2f})"
        )

    # Measured local halo volume tracks the Section-7.3 expectation.
    for row in by(rows, model="GCN", formulation="local", p=4):
        rho = row.m / row.n**2
        predicted = erdos_renyi_local_words(row.n, row.k, row.p, rho)
        halo_words = row.extra.get("phase_halo", 0) // 4
        per_layer = halo_words / row.layers
        assert per_layer == pytest.approx(predicted, rel=0.5), (
            f"n={row.n} rho={rho}: measured {per_layer} vs "
            f"predicted {predicted}"
        )
