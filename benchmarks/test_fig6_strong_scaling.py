"""Figure 6 — strong scaling of full-batch training on Kronecker graphs.

Paper setup: fixed Kronecker graphs (n = 131k…2M, rho = 1%…0.01%),
k ∈ {16, 128}, L = 3, node counts 1…256; VA/AGNN/GAT global-formulation
full-batch training vs. DistDGL mini-batch training. Scaled here to
n = 2048 and p ∈ {1, 4, 16}.

Reproduced claims (asserted):

* At the lowest density (rho = 0.01%) the global formulation beats the
  DistDGL-like mini-batch baseline for the attention models (the paper
  reports 3–5x for AGNN/GAT, 2–3x for VA).
* At the highest density (rho = 1%) the mini-batch baseline becomes
  competitive or better (the paper reports VA/GAT slower by up to >5x
  there) — full-batch work grows with m = rho n^2, sampled work does not.
* Global-formulation modeled time improves when scaling 1 → 16 ranks
  (strong scaling actually scales).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import by, emit, run_point, sweep_benchmark
from repro.bench.configs import FIGURE_CONFIGS


def _sweep(config_name: str):
    config = FIGURE_CONFIGS[config_name]
    rows = []
    for model, formulation, n, m, k, p, rho in config.points():
        rows.append(
            run_point(
                config.figure, model, formulation, config.task,
                config.graph_kind, n, m, k, p, layers=config.layers,
            )
        )
    return rows


@pytest.fixture(scope="module")
def fig6_k16_rows():
    return _sweep("fig6_k16")


def test_fig6_k16(sweep_benchmark, fig6_k16_rows):
    rows = sweep_benchmark(lambda: fig6_k16_rows)
    emit(rows, "fig6_k16.csv")

    lowest_density = min(r.density for r in rows)
    highest_density = max(r.density for r in rows)

    def ratio(model, p, density):
        glob = by(rows, model=model, formulation="global", p=p,
                  density=density)
        mini = by(rows, model=model, formulation="minibatch", p=p,
                  density=density)
        return min(r.modeled_s for r in mini) / min(r.modeled_s for r in glob)

    # Sparse regime: the global full batch beats DistDGL-like minibatch
    # (the paper's 3-5x for AGNN/GAT, 2-3x for VA).
    for model in ("VA", "AGNN", "GAT"):
        low = ratio(model, 4, lowest_density)
        assert low > 1.2, (
            f"{model} p=4: global should win at the lowest density "
            f"(mini/global ratio {low:.2f})"
        )
    # Dense regime: full-batch edge work explodes with m = rho n^2 while
    # sampled blocks stay fan-out-bounded; DistDGL becomes faster (the
    # paper reports global up to >5x slower at rho = 1%).
    for model in ("VA", "AGNN", "GAT"):
        high = ratio(model, 4, highest_density)
        low = ratio(model, 4, lowest_density)
        assert high < 1.0, (
            f"{model}: minibatch must win at the densest point "
            f"(ratio {high:.2f})"
        )
        assert high < low, (
            f"{model}: the global advantage must shrink as density grows"
        )
    # Strong scaling of the global formulation on the compute-heavy
    # (densest) graphs: 16 ranks beat 1 rank.
    for model in ("VA", "AGNN", "GAT"):
        series = by(rows, model=model, formulation="global",
                    density=highest_density)
        t1 = next(r.modeled_s for r in series if r.p == 1)
        t16 = next(r.modeled_s for r in series if r.p == 16)
        assert t16 < t1, f"{model}: no strong scaling between p=1 and p=16"


def test_fig6_k128(sweep_benchmark):
    rows = sweep_benchmark(lambda: _sweep("fig6_k128"))
    emit(rows, "fig6_k128.csv")
    # The paper: at k=128 GAT is the best-performing global model (it
    # broadcasts projected features once and reuses them).
    lowest = min(r.density for r in rows)
    gat = min(
        r.modeled_s
        for r in by(rows, model="GAT", formulation="global", p=16,
                    density=lowest)
    )
    va = min(
        r.modeled_s
        for r in by(rows, model="VA", formulation="global", p=16,
                    density=lowest)
    )
    assert gat <= va * 1.5
    # Communication volume grows with k: k=128 rows must move more data
    # than any k=16 row at the same (n, p).
    assert min(r.comm_words for r in rows if r.p == 16) > 0
