"""Figure 6 — strong scaling of full-batch training on Kronecker graphs.

Paper setup: fixed Kronecker graphs (n = 131k…2M, rho = 1%…0.01%),
k ∈ {16, 128}, L = 3, node counts 1…256; VA/AGNN/GAT global-formulation
full-batch training vs. DistDGL mini-batch training. Scaled here to
n = 2048 and p ∈ {1, 4, 16}.

Reproduced claims (asserted):

* At the lowest density (rho = 0.01%) the global formulation beats the
  DistDGL-like mini-batch baseline for the attention models (the paper
  reports 3–5x for AGNN/GAT, 2–3x for VA).
* At the highest density (rho = 1%) the mini-batch baseline becomes
  competitive or better (the paper reports VA/GAT slower by up to >5x
  there) — full-batch work grows with m = rho n^2, sampled work does not.
* Global-formulation modeled time improves when scaling 1 → 16 ranks
  (strong scaling actually scales).
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, by, emit, run_point, sweep_benchmark
from repro.bench.configs import FIGURE_CONFIGS
from repro.bench.strong_scaling import (
    MEDIUM_ER,
    can_show_speedup,
    measure_strong_scaling,
)


def _sweep(config_name: str):
    config = FIGURE_CONFIGS[config_name]
    rows = []
    for model, formulation, n, m, k, p, rho in config.points():
        rows.append(
            run_point(
                config.figure, model, formulation, config.task,
                config.graph_kind, n, m, k, p, layers=config.layers,
            )
        )
    return rows


@pytest.fixture(scope="module")
def fig6_k16_rows():
    return _sweep("fig6_k16")


def test_fig6_k16(sweep_benchmark, fig6_k16_rows):
    rows = sweep_benchmark(lambda: fig6_k16_rows)
    emit(rows, "fig6_k16.csv")

    lowest_density = min(r.density for r in rows)
    highest_density = max(r.density for r in rows)

    def ratio(model, p, density):
        glob = by(rows, model=model, formulation="global", p=p,
                  density=density)
        mini = by(rows, model=model, formulation="minibatch", p=p,
                  density=density)
        return min(r.modeled_s for r in mini) / min(r.modeled_s for r in glob)

    # Sparse regime: the global full batch beats DistDGL-like minibatch
    # (the paper's 3-5x for AGNN/GAT, 2-3x for VA).
    for model in ("VA", "AGNN", "GAT"):
        low = ratio(model, 4, lowest_density)
        assert low > 1.2, (
            f"{model} p=4: global should win at the lowest density "
            f"(mini/global ratio {low:.2f})"
        )
    # Dense regime: full-batch edge work explodes with m = rho n^2 while
    # sampled blocks stay fan-out-bounded; DistDGL becomes faster (the
    # paper reports global up to >5x slower at rho = 1%).
    for model in ("VA", "AGNN", "GAT"):
        high = ratio(model, 4, highest_density)
        low = ratio(model, 4, lowest_density)
        assert high < 1.0, (
            f"{model}: minibatch must win at the densest point "
            f"(ratio {high:.2f})"
        )
        assert high < low, (
            f"{model}: the global advantage must shrink as density grows"
        )
    # Strong scaling of the global formulation on the compute-heavy
    # (densest) graphs: 16 ranks beat 1 rank.
    for model in ("VA", "AGNN", "GAT"):
        series = by(rows, model=model, formulation="global",
                    density=highest_density)
        t1 = next(r.modeled_s for r in series if r.p == 1)
        t16 = next(r.modeled_s for r in series if r.p == 16)
        assert t16 < t1, f"{model}: no strong scaling between p=1 and p=16"


def test_fig6_k128(sweep_benchmark):
    rows = sweep_benchmark(lambda: _sweep("fig6_k128"))
    emit(rows, "fig6_k128.csv")
    # The paper: at k=128 GAT is the best-performing global model (it
    # broadcasts projected features once and reuses them).
    lowest = min(r.density for r in rows)
    gat = min(
        r.modeled_s
        for r in by(rows, model="GAT", formulation="global", p=16,
                    density=lowest)
    )
    va = min(
        r.modeled_s
        for r in by(rows, model="VA", formulation="global", p=16,
                    density=lowest)
    )
    assert gat <= va * 1.5
    # Communication volume grows with k: k=128 rows must move more data
    # than any k=16 row at the same (n, p).
    assert min(r.comm_words for r in rows if r.p == 16) > 0


def test_fig6_process_backend_measured(sweep_benchmark):
    """Measured (not modeled) strong scaling on the process backend.

    The figure sweeps above report *modeled* time from exact traffic
    accounting. This point runs the medium-ER configuration on real OS
    processes — once synchronously and once with the comm/compute-
    overlapped schedules (``overlap=True``) — and records measured
    epoch-loop seconds, the p=4 vs p=1 speedup, and the per-rank
    wait-time maximum into ``fig6_process_backend.json``. Speedup (and
    the overlap wall-clock win) is *asserted only when the host has
    enough cores*: a 1-core CI runner time-slices the ranks, so there
    overlap cannot reduce wall time and the numbers are recorded, not
    gated. Correctness is always gated — losses must be bit-identical
    across p, across backends, and across overlap modes, and the byte
    accounting must not depend on the transport or the overlap mode.
    """
    rows = sweep_benchmark(
        lambda: measure_strong_scaling(
            model_name="AGNN", backend="process", p_list=(1, 4),
            overlap=False,
        )
    )
    rows_overlap = measure_strong_scaling(
        model_name="AGNN", backend="process", p_list=(1, 4), overlap=True
    )

    header = (
        f"{'backend':<8} {'ovl':>3} {'p':>3} {'n':>6} {'k':>4} "
        f"{'train_s':>10} {'speedup':>8} {'max_wait_s':>10} "
        f"{'comm_words':>11}"
    )
    print()
    print(header)
    print("-" * len(header))
    for row in rows + rows_overlap:
        print(
            f"{row['backend']:<8} {int(row['overlap']):>3} {row['p']:>3} "
            f"{row['n']:>6} {row['k']:>4} {row['train_s']:>10.4f} "
            f"{row['speedup_vs_p1']:>8.3f} {row['max_wait_s']:>10.4f} "
            f"{row['comm_words']:>11}"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "figure": "fig6_process_backend",
        "config": MEDIUM_ER,
        "cpu_count": os.cpu_count(),
        "speedup_gated": can_show_speedup(4),
        "note": (
            "measured wall-clock of the epoch loop on spawned process "
            "ranks, synchronous vs comm/compute-overlapped schedules; "
            "speedup_vs_p1 > 1 (and the overlap win) requires "
            "cpu_count >= p"
        ),
        "rows": rows,
        "rows_overlap": rows_overlap,
    }
    with open(RESULTS_DIR / "fig6_process_backend.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    # Correctness is always gated; speed only on capable hosts.
    assert all(row["backend"] == "process" for row in rows + rows_overlap)
    assert all(row["train_s"] > 0 for row in rows + rows_overlap)
    first_losses = {row["first_loss"] for row in rows}
    assert len(first_losses) == 1, "loss must not depend on p"
    assert {row["first_loss"] for row in rows_overlap} == first_losses, (
        "overlap must not change the numerics"
    )
    for sync_row, ovl_row in zip(rows, rows_overlap):
        assert sync_row["comm_words"] == ovl_row["comm_words"], (
            "overlap must not change the traffic"
        )
    thread_row = measure_strong_scaling(
        model_name="AGNN", backend="thread", p_list=(4,)
    )[0]
    assert thread_row["first_loss"] in first_losses, (
        "process and thread backends must agree numerically"
    )
    assert thread_row["comm_words"] == next(
        row["comm_words"] for row in rows if row["p"] == 4
    ), "byte accounting must be transport-independent"

    if can_show_speedup(4):
        # Multi-core host: ranks run on real cores, so p=4 must beat
        # p=1 and the overlapped schedule must not lose to the
        # synchronous one beyond timing noise (the cost model predicts
        # max(compute, bandwidth) <= compute + bandwidth).
        sync4 = next(row for row in rows if row["p"] == 4)
        ovl4 = next(row for row in rows_overlap if row["p"] == 4)
        assert sync4["speedup_vs_p1"] > 1.0, (
            f"no measured strong scaling on a {os.cpu_count()}-core host"
        )
        assert ovl4["train_s"] < sync4["train_s"] * 1.25, (
            "overlapped schedules regressed wall time beyond noise"
        )
