"""Ablation — vertex ordering and 2D load balance.

The paper's Kronecker experiments stress "high load imbalance"; this
ablation quantifies how much vertex ordering matters for the 1.5D
schedule: the same R-MAT graph is distributed (a) degree-sorted (the
adversarial order the raw recursion approximates), (b) Graph500-
scrambled. Asserts the scrambled layout's block imbalance is several
times lower and its distributed training time correspondingly better —
the effect that separates a 10% from a 60% weak-scaling efficiency in
Figure 8.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_config
from repro.graphs import kronecker
from repro.graphs.prep import prepare_adjacency
from repro.graphs.reorder import (
    degree_sort_order,
    load_balance_report,
    permute,
    random_order,
)

N, P = 2048, 16


@pytest.fixture(scope="module")
def orderings():
    base = kronecker(N, 24 * N, seed=0, scramble=False)
    adversarial = prepare_adjacency(permute(base, degree_sort_order(base)))
    scrambled = prepare_adjacency(permute(base, random_order(N, seed=1)))
    return adversarial, scrambled


def test_block_imbalance(benchmark, orderings):
    adversarial, scrambled = orderings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bad = load_balance_report(adversarial, P)
    good = load_balance_report(scrambled, P)
    print(f"\n  degree-sorted: {bad}")
    print(f"  scrambled:     {good}")
    assert bad.imbalance > 2.5 * good.imbalance
    assert good.imbalance < 1.6


@pytest.mark.parametrize("layout", ["degree_sorted", "scrambled"])
def test_training_time_by_layout(benchmark, orderings, layout):
    adversarial, scrambled = orderings
    a = adversarial if layout == "degree_sorted" else scrambled
    row = benchmark.pedantic(
        lambda: run_config(
            "ablation_balance", "GAT", "global", "training", a,
            k=16, layers=2, p=P,
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["modeled_s"] = row.modeled_s


def test_scrambled_is_faster(benchmark, orderings):
    adversarial, scrambled = orderings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = {}
    for name, a in (("bad", adversarial), ("good", scrambled)):
        row = run_config(
            "ablation_balance", "GAT", "global", "training", a,
            k=16, layers=2, p=P,
        )
        times[name] = row.modeled_s
    assert times["good"] < times["bad"], times
