"""Ablation — generalised semiring aggregations (Section 4.3).

The paper's claim is architectural: arbitrary aggregations (max, min,
average) are *the same SpMM kernel* over a different semiring, so they
plug into the same distribution schedule at comparable cost. This
bench measures the single-node kernel across semirings and asserts the
exotic semirings stay within a small factor of the real-semiring
reference path (they cannot use the BLAS fast path, so parity with the
pure-NumPy reference is the right comparison).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import make_graph
from repro.tensor.kernels import spmm
from repro.tensor.semiring import (
    AVERAGE,
    REAL,
    TROPICAL_MAX,
    TROPICAL_MIN,
    adjacency_values,
)

N, K = 4096, 32


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = make_graph("uniform", N, 16 * N, seed=0)
    h = rng.normal(size=(N, K)).astype(np.float32)
    return a, h


@pytest.mark.parametrize(
    "semiring", [REAL, TROPICAL_MIN, TROPICAL_MAX, AVERAGE],
    ids=lambda s: s.name,
)
def test_semiring_spmm(benchmark, operands, semiring):
    a, h = operands
    lifted = a.with_data(adjacency_values(semiring, a.data))
    out = benchmark(
        lambda: spmm(lifted, h, semiring=semiring, backend="reference")
    )
    assert out.shape == (N, K)
    assert np.all(np.isfinite(out))


def test_semiring_cost_parity(benchmark, operands):
    """Exotic semirings stay within ~4x of the real reference SpMM."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a, h = operands
    timings = {}
    for semiring in (REAL, TROPICAL_MIN, TROPICAL_MAX, AVERAGE):
        lifted = a.with_data(adjacency_values(semiring, a.data))
        spmm(lifted, h, semiring=semiring, backend="reference")  # warmup
        start = time.perf_counter()
        for _ in range(3):
            spmm(lifted, h, semiring=semiring, backend="reference")
        timings[semiring.name] = time.perf_counter() - start
    base = timings["real"]
    for name, t in timings.items():
        assert t < 4 * base + 0.05, f"{name} too slow: {t:.4f}s vs {base:.4f}s"
