"""Sampled training past the full-batch memory ceiling (recorded).

Trains a 2-layer GAT with fan-out-limited mini-batches on a power-law
graph whose estimated full-batch activation footprint is at least an
order of magnitude above the per-batch sampled working set — the
configuration the full-batch trainer could not hold at a matching
memory budget. The run's ms/epoch, peak RSS and loss curve are written
to ``benchmarks/results/sampled_scale.json``; wall-clock numbers are
*recorded, not gated* (the CI job uploads the JSON as an artifact and
only the structural claims below are asserted).
"""

from __future__ import annotations

import json
import math

from benchmarks.conftest import RESULTS_DIR
from repro.bench.sampled_scale import run


def test_gat_sampled_powerlaw_scale(sweep_benchmark):
    record = sweep_benchmark(lambda: run(
        n=1 << 15, mean_degree=8, feature_dim=32, hidden_dim=32,
        num_classes=8, fanout=3, num_layers=2, batch_size=128,
        epochs=2, seed=0,
    ))

    # The sized-past-the-ceiling claim: the full-batch cache estimate
    # dwarfs the sampled batch's working set by >= 10x (deterministic
    # arithmetic over the configuration, safe to assert anywhere).
    assert record["scale_ratio"] >= 10.0

    # Training actually ran and stayed finite on the heavy-tailed graph.
    batches = -(-record["config"]["n"] // record["config"]["batch_size"])
    assert len(record["losses"]) == batches * record["config"]["epochs"]
    assert all(math.isfinite(x) for x in record["losses"])
    assert record["sampled_edges"] > 0
    assert record["ms_per_epoch"] > 0.0
    assert record["peak_rss_mb"] > 0.0

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "sampled_scale.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nsampled-scale: n={record['config']['n']} "
        f"m={record['config']['num_edges']} "
        f"ratio={record['scale_ratio']:.1f}x "
        f"ms/epoch={record['ms_per_epoch']:.1f} "
        f"peak_rss={record['peak_rss_mb']:.1f}MiB -> {out}"
    )
