"""Ablation — what the Section-6.2 fusion pass buys.

Compares the fused executor (virtual intermediates sampled directly on
the adjacency pattern) against the tile-materialising executor (what a
tensor framework without the pass must do) on the three Psi DAGs.
Asserts the fused path is faster and touches asymptotically less
memory (nnz vs n * tile).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import make_graph
from repro.fusion import agnn_psi_dag, execute, fuse, gat_psi_dag, va_psi_dag

N = 4096
TILE = 256


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    a = make_graph("uniform", N, 8 * N, seed=0)
    return {
        "H": rng.normal(size=(N, 32)),
        "A": a,
        "W": 0.2 * rng.normal(size=(32, 32)),
        "a_src": 0.2 * rng.normal(size=32),
        "a_dst": 0.2 * rng.normal(size=32),
    }


@pytest.mark.parametrize(
    "name,builder",
    [("va", va_psi_dag), ("agnn", agnn_psi_dag), ("gat", gat_psi_dag)],
)
def test_fused_vs_tiled(benchmark, inputs, name, builder):
    program = fuse(builder())

    def fused():
        return execute(program, inputs, mode="fused")

    out_fused = benchmark(fused)

    start = time.perf_counter()
    out_tiled = execute(program, inputs, mode="tiled", tile_rows=TILE)
    tiled_s = time.perf_counter() - start

    start = time.perf_counter()
    fused_result = fused()
    fused_s = time.perf_counter() - start

    assert np.allclose(out_fused.data, out_tiled.data, rtol=1e-6, atol=1e-12)
    # The tiled path materialises n/TILE tiles of n floats each; it must
    # be measurably slower than the fused sampling.
    assert fused_s < tiled_s, (
        f"{name}: fusion should win (fused {fused_s:.4f}s vs "
        f"tiled {tiled_s:.4f}s)"
    )
    benchmark.extra_info["tiled_s"] = tiled_s
    benchmark.extra_info["speedup"] = tiled_s / max(fused_s, 1e-12)


def test_fusion_eliminates_all_virtuals(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Compile-time guarantee: no virtual tensor survives the pass."""
    for builder in (va_psi_dag, agnn_psi_dag, gat_psi_dag):
        program = fuse(builder())
        fused_nodes = set()
        for kernel in program.kernels:
            fused_nodes |= set(kernel.fused_nodes)
        assert set(program.virtual_nodes) <= fused_nodes
