"""Section 7 — communication-volume bounds, measured exactly.

Verifies the theoretical contribution directly on the simulated
cluster's byte counters rather than through modeled time:

* Global formulation per-layer volume follows O(nk/sqrt(p) + k^2):
  linear in n, linear in k, and shrinking ~1/sqrt(p) per rank.
* Local formulation per-layer volume follows the halo law: the *exact*
  per-graph predictor matches measurement to within 1%, and volumes
  saturate near nk for dense graphs.
* Training volume is a constant factor of inference volume (Section
  7.2: asymptotically the same).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit, sweep_benchmark
from repro.baselines.dist_local import dist_local_inference
from repro.bench.harness import make_graph, run_config
from repro.theory import exact_local_halo_words


@pytest.fixture(scope="module")
def volume_rows():
    rows = []
    for p in (4, 16):
        for n in (1024, 2048):
            for k in (16, 32):
                a = make_graph("uniform", n, 8 * n, seed=0)
                for task in ("inference", "training"):
                    rows.append(
                        run_config(
                            "theory", "GAT", "global", task, a, k, 2, p,
                        )
                    )
    return rows


def test_global_volume_laws(sweep_benchmark, volume_rows):
    rows = sweep_benchmark(lambda: volume_rows)
    emit(rows, "theory_volume.csv")

    def words(n, k, p, task):
        return next(
            r.comm_words for r in rows
            if r.n == n and r.k == k and r.p == p and r.task == task
        )

    # Linear in n.
    ratio_n = words(2048, 16, 4, "inference") / words(1024, 16, 4, "inference")
    assert 1.7 < ratio_n < 2.3

    # Roughly linear in k. The attention path also carries k-independent
    # per-row softmax reductions (O(n/sqrt(p)) words), so doubling k
    # yields a sub-2x but clearly super-1.3x growth.
    ratio_k = words(1024, 32, 4, "inference") / words(1024, 16, 4, "inference")
    assert 1.3 < ratio_k < 2.4

    # Per-rank volume shrinks ~1/sqrt(p): x2 ranks-sqrt -> ~x0.5 volume.
    ratio_p = words(2048, 16, 16, "inference") / words(2048, 16, 4, "inference")
    assert 0.35 < ratio_p < 0.8

    # Training volume is a bounded constant multiple of inference.
    for n in (1024, 2048):
        factor = words(n, 16, 4, "training") / words(n, 16, 4, "inference")
        assert 1.5 < factor < 5.0


def test_local_halo_exactness(benchmark):
    """The DistDGL-like engine sends exactly the predicted halo."""
    a = make_graph("uniform", 512, 4096, seed=3)
    k, p, layers = 16, 4, 3
    predicted = exact_local_halo_words(a, p, k)

    def run():
        h = np.zeros((512, k), dtype=np.float32)
        return dist_local_inference("GCN", a, h, k, k, num_layers=layers,
                                    p=p, seed=0)[1]

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = stats.phase_bytes()["halo"] // 4
    assert measured == pytest.approx(layers * predicted, rel=0.01)
