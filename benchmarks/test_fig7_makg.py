"""Figure 7 (two leftmost plots) — strong scaling on the MAKG graph.

Paper setup: the Microsoft Academic Knowledge Graph (111M vertices,
3.2B edges), inference and training, k ∈ {16, 64, 128}, up to 1024
nodes; only the global formulation runs at all (DistDGL OOMs).
Substituted here (DESIGN.md) by a power-law graph with MAKG-like skew
at n = 2^13, k ∈ {16, 64}, p ∈ {1, 4, 16}.

Reproduced claims (asserted):

* All models scale: modeled time at p = 16 beats p = 1 for training on
  the heavy-tailed real-graph substitute.
* Inference is cheaper than training for every configuration
  (Section 7.2: training is strictly more expensive, same asymptotic
  communication).
* Communication volume per rank *decreases* with p (the O(nk/sqrt(p))
  law), so "even for 1,024 nodes, the communication does not become
  the bottleneck".
* GAT puts less memory/communication pressure than VA/AGNN at large k
  (the paper could run MAKG GAT on 4x fewer nodes) — its per-layer
  traffic stays at or below the VA/AGNN level.
"""

from __future__ import annotations


from benchmarks.conftest import by, emit, run_point, sweep_benchmark
from repro.bench.configs import FIGURE_CONFIGS


def _sweep():
    config = FIGURE_CONFIGS["fig7_makg"]
    rows = []
    for task in ("inference", "training"):
        for model, _form, n, m, k, p, _rho in config.points():
            rows.append(
                run_point(
                    config.figure, model, "global", task,
                    config.graph_kind, n, m, k, p, layers=config.layers,
                )
            )
    return rows


def test_fig7_makg(sweep_benchmark):
    rows = sweep_benchmark(_sweep)
    emit(rows, "fig7_makg.csv")

    for model in ("VA", "AGNN", "GAT"):
        for k in (16, 64):
            training = by(rows, model=model, task="training", k=k)
            t1 = next(r.modeled_s for r in training if r.p == 1)
            t16 = next(r.modeled_s for r in training if r.p == 16)
            assert t16 < t1, f"{model} k={k}: training does not strong-scale"

            inference = by(rows, model=model, task="inference", k=k)
            for p in (1, 4, 16):
                t_inf = next(r.modeled_s for r in inference if r.p == p)
                t_tr = next(r.modeled_s for r in training if r.p == p)
                assert t_inf < t_tr, (
                    f"{model} k={k} p={p}: inference should be cheaper "
                    "than training"
                )

            # Per-rank volume shrinks with p: O(nk/sqrt(p)).
            v4 = next(r.comm_words for r in training if r.p == 4)
            v16 = next(r.comm_words for r in training if r.p == 16)
            assert v16 < v4, (
                f"{model} k={k}: per-rank volume must fall as p grows"
            )

    # GAT's traffic at large k stays at or below VA/AGNN's.
    for p in (4, 16):
        gat = next(
            r.comm_words
            for r in by(rows, model="GAT", task="training", k=64, p=p)
        )
        va = next(
            r.comm_words
            for r in by(rows, model="VA", task="training", k=64, p=p)
        )
        assert gat <= va * 1.1, "GAT should not move more data than VA"
