#!/usr/bin/env python3
"""Communication-volume analysis: theory (Section 7) vs. measurement.

Sweeps Erdős–Rényi density across the paper's predicted crossover
q = sqrt(p)/n and prints, for each density:

* the closed-form global and local volume predictions,
* the *measured* per-rank volumes of both engines on the simulated
  cluster,
* which formulation wins under the alpha-beta-gamma machine model.

The table makes the paper's core theoretical claim tangible: the local
formulation's halo saturates as density grows, while the global
formulation's O(nk/sqrt(p)) traffic is density-independent.

Run:
    python examples/communication_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.dist_local import dist_local_inference
from repro.distributed.api import distributed_inference
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency
from repro.runtime.costmodel import CostModel
from repro.theory import (
    crossover_density,
    erdos_renyi_local_words,
    exact_local_halo_words,
    global_layer_words,
)


def main() -> None:
    n, k, p, layers = 2048, 16, 16, 2
    rng = np.random.default_rng(0)
    features = rng.normal(0, 1, (n, k)).astype(np.float32)
    cost = CostModel()

    q_star = crossover_density(n, p)
    print(f"n={n}, k={k}, p={p}; predicted crossover q* = sqrt(p)/n "
          f"= {q_star:.5f}\n")
    header = (
        f"{'density':>9} {'pred glob':>10} {'pred loc':>10} "
        f"{'meas glob':>10} {'meas loc':>10} {'t_glob':>10} {'t_loc':>10} "
        f"{'winner':>7}"
    )
    print(header)
    print("-" * len(header))

    for q in (q_star / 4, q_star, 4 * q_star, 16 * q_star, 64 * q_star):
        m = max(n, int(q * n * n))
        adjacency = prepare_adjacency(erdos_renyi(n, m, seed=1))

        predicted_global = layers * global_layer_words(n, k, p, model="gcn")
        predicted_local = layers * erdos_renyi_local_words(n, k, p, q)

        global_result = distributed_inference(
            "GCN", adjacency, features, k, k, num_layers=layers, p=p, seed=0
        )
        _, local_stats = dist_local_inference(
            "GCN", adjacency, features, k, k, num_layers=layers, p=p, seed=0
        )
        t_global = cost.time(global_result.stats)
        t_local = cost.time(local_stats)
        print(
            f"{q:>9.5f} {predicted_global:>10.0f} {predicted_local:>10.0f} "
            f"{global_result.stats.max_words_sent:>10} "
            f"{local_stats.max_words_sent:>10} "
            f"{t_global:>9.2e}s {t_local:>9.2e}s "
            f"{'global' if t_global < t_local else 'local':>7}"
        )

    # Exact prediction check on one graph.
    adjacency = prepare_adjacency(erdos_renyi(n, 16 * n, seed=1))
    exact = exact_local_halo_words(adjacency, p, k)
    _, stats = dist_local_inference(
        "GCN", adjacency, features, k, k, num_layers=1, p=p, seed=0
    )
    measured = stats.phase_bytes()["halo"] // 4
    print(
        f"\nexact halo predictor: predicted {exact} words/layer, "
        f"measured {measured} "
        f"({'match' if abs(measured - exact) <= 0.02 * exact else 'MISMATCH'})"
    )


if __name__ == "__main__":
    main()
