#!/usr/bin/env python3
"""Quickstart: train a Graph Attention Network with global formulations.

Builds a synthetic node-classification problem (a stochastic block
model), trains a 2-layer GAT with the library's manually-derived
global-formulation backward pass, and evaluates accuracy — the
minimal end-to-end tour of the public API.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.graphs import synthetic_classification
from repro.models import build_model
from repro.training import Adam, SoftmaxCrossEntropyLoss, Trainer


def main() -> None:
    # 1. A learnable dataset: 800 vertices, 4 planted communities,
    #    noisy class-prototype features.
    data = synthetic_classification(
        n=800, num_classes=4, feature_dim=16, mean_degree=10,
        homophily=0.85, seed=7,
    )
    print(
        f"graph: n={data.adjacency.shape[0]}, m={data.adjacency.nnz}, "
        f"classes={data.num_classes}"
    )

    # 2. A 2-layer GAT. `build_model` accepts "VA", "AGNN", "GAT", "GCN";
    #    every model exposes identical forward/backward interfaces.
    model = build_model(
        "GAT", in_dim=16, hidden_dim=32, out_dim=data.num_classes,
        num_layers=2, seed=0,
    )

    # 3. Full-batch training: each epoch is one forward + backward pass
    #    over the whole graph (the paper's Section-5 formulations).
    trainer = Trainer(
        model,
        SoftmaxCrossEntropyLoss(data.train_mask),
        Adam(lr=0.01),
    )
    result = trainer.fit(
        data.adjacency, data.features, data.labels,
        epochs=60,
        train_mask=data.train_mask,
        val_mask=data.val_mask,
        patience=10,
    )

    # 4. Evaluate.
    test_accuracy = trainer.evaluate(
        data.adjacency, data.features, data.labels, data.test_mask
    )
    print(f"trained for {len(result.losses)} epochs")
    print(f"final training loss: {result.final_loss:.4f}")
    print(f"test accuracy:       {test_accuracy:.3f}")
    assert test_accuracy > 0.8, "the SBM should be easily separable"


if __name__ == "__main__":
    main()
