#!/usr/bin/env python3
"""The toolchain tour: op DAGs, sparsity inference, fusion, execution.

Walks the paper's Figure-4 flow on the GAT attention operator:

1. write Psi as a DAG of Table-2 building blocks,
2. run sparsity inference — every n×n dense intermediate is flagged
   *virtual* (Section 6.1),
3. run the fusion pass — virtual chains ending in a sparse sampling
   collapse into SDDMM-like kernels (Section 6.2),
4. execute fused vs. tile-materialised and compare,
5. derive the *backward* DAG with reverse-mode autodiff (Section 5,
   derived instead of hand-written), print the joint forward+backward
   program with its fused kernels, and check the derived gradient
   against the hand VJP.

Also demonstrates the compile-time safety property: a DAG whose virtual
intermediate escapes sampling is *rejected*, instead of attempting an
n×n dense allocation at runtime.

Run:
    python examples/fusion_toolchain.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.fusion import (
    OpDag,
    ProgramRunner,
    Sparsity,
    build_vjp,
    execute,
    fuse,
    gat_psi_dag,
)
from repro.fusion.sparsity import infer_sparsity
from repro.graphs import erdos_renyi
from repro.graphs.prep import prepare_adjacency


def main() -> None:
    dag = gat_psi_dag(slope=0.2)

    print("GAT Psi as an op DAG (Table-2 building blocks):")
    print(dag.pretty())

    sparsity = infer_sparsity(dag)
    virtuals = [n for n, s in sparsity.items() if s is Sparsity.VIRTUAL]
    print(f"\nsparsity inference: {len(virtuals)} virtual n x n "
          f"intermediates: {virtuals}")

    program = fuse(dag)
    print("\nfusion pass output:")
    for kernel in program.kernels:
        print(f"  {kernel.describe(dag)}")

    # Execute on a real graph.
    n, k = 4096, 32
    rng = np.random.default_rng(0)
    inputs = {
        "A": prepare_adjacency(erdos_renyi(n, 8 * n, seed=0)),
        "H": rng.normal(size=(n, k)),
        "W": 0.2 * rng.normal(size=(k, k)),
        "a_src": 0.2 * rng.normal(size=k),
        "a_dst": 0.2 * rng.normal(size=k),
    }
    start = time.perf_counter()
    fused = execute(program, inputs, mode="fused")
    fused_s = time.perf_counter() - start
    start = time.perf_counter()
    tiled = execute(program, inputs, mode="tiled", tile_rows=256)
    tiled_s = time.perf_counter() - start
    assert np.allclose(fused.data, tiled.data, rtol=1e-6, atol=1e-12)
    print(
        f"\nexecution on n={n}, nnz={inputs['A'].nnz}: "
        f"fused {fused_s * 1e3:.1f} ms vs tiled (unfused) "
        f"{tiled_s * 1e3:.1f} ms -> {tiled_s / fused_s:.1f}x from fusion"
    )

    # Reverse-mode autodiff: derive the backward DAG from the same
    # forward formulation, in the same IR.
    grad_program = build_vjp(
        gat_psi_dag(slope=0.2),
        wrt=("H", "W", "a_src", "a_dst"),
        seed_name="dS",
    )
    print("\njoint forward+backward program (derived, then fused):")
    print(grad_program.describe())

    runner = ProgramRunner(grad_program.dag, inputs, mode="fused")
    s = runner.run()  # forward: the attention matrix
    ds = s.with_data(rng.normal(size=s.nnz))  # a pretend upstream grad
    runner.bind("dS", ds)
    start = time.perf_counter()
    dw = runner.run("grad:W")  # reuses the cached forward activations
    backward_s = time.perf_counter() - start
    print(
        f"\nderived dW via grad:W in {backward_s * 1e3:.1f} ms, "
        f"|dW|_F = {np.linalg.norm(dw):.4f}"
    )

    from repro.core.psi import psi_gat, psi_gat_vjp

    _, cache = psi_gat(
        inputs["A"], inputs["H"] @ inputs["W"], inputs["a_src"],
        inputs["a_dst"], slope=0.2,
    )
    dhp, _, _ = psi_gat_vjp(ds.data, cache)
    dw_hand = inputs["H"].T @ dhp
    rel = np.max(np.abs(dw - dw_hand)) / np.max(np.abs(dw_hand))
    print(f"matches the hand-written Section-5 VJP to {rel:.2e}")

    # Compile-time rejection of an escaping virtual.
    bad = OpDag()
    h = bad.input("H", "nk")
    gram = bad.matmul(h, bad.transpose(h))  # virtual n x n
    bad.set_output(bad.matmul(gram, h))     # consumes the dense!
    try:
        fuse(bad)
    except ValueError as error:
        print(f"\nescaping virtual rejected at compile time:\n  {error}")
    else:  # pragma: no cover
        raise AssertionError("the bad DAG should have been rejected")


if __name__ == "__main__":
    main()
