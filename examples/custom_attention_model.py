#!/usr/bin/env python3
"""Programmability demo: design a new A-GNN from Psi / ⊕ / Phi.

The paper's generic formulation (Eq. 1) claims one can "easily design
an arbitrary A-GNN model by appropriately specifying Psi, ⊕, and Phi".
This example does exactly that, twice:

1. A *temperature-scaled dot-product* attention (a softmax'd VA — the
   transformer scoring rule on graphs), with a hand-written VJP, so the
   custom model is fully trainable.
2. A *max-pooling attention* variant whose aggregation runs over the
   tropical max-plus semiring (Section 4.3) — inference-only, since
   max-aggregation is not smooth.

Both reuse the library's fused SDDMM/softmax kernels; no new kernel
code is needed.

Run:
    python examples/custom_attention_model.py
"""

from __future__ import annotations

import numpy as np

from repro.core.formulation import AttentionSpec, GenericLayer
from repro.graphs import synthetic_classification
from repro.models.base import GnnModel
from repro.tensor.kernels import (
    masked_row_softmax_backward,
    sddmm_dot,
    spmm,
)
from repro.tensor.segment import segment_softmax
from repro.tensor.semiring import TROPICAL_MAX, adjacency_values
from repro.training import Adam, SoftmaxCrossEntropyLoss, Trainer


# ----------------------------------------------------------------------
# 1. Scaled dot-product attention: Psi = sm(A ⊙ (H H^T / sqrt(k)))
# ----------------------------------------------------------------------
def make_scaled_dot_spec(temperature: float) -> AttentionSpec:
    def psi(a, h):
        scores = sddmm_dot(a, h, h) / temperature
        soft = segment_softmax(scores, a.indptr)
        s = a.with_data(soft)
        return s, {"a": a, "h": h, "soft": soft}

    def psi_vjp(ds_values, cache):
        a, h = cache["a"], cache["h"]
        # Softmax backward, then the symmetric Gram-product backward —
        # all built from the library's Table-2 kernels.
        d_scores = masked_row_softmax_backward(
            cache["soft"], ds_values, a.indptr
        ) / temperature
        n_mat = a.with_data(d_scores)
        return spmm(n_mat, h) + spmm(n_mat.transpose(), h)

    return AttentionSpec(psi=psi, psi_vjp=psi_vjp, name="scaled-dot")


# ----------------------------------------------------------------------
# 2. Max-pooling attention: scores gate which neighbour dominates.
# ----------------------------------------------------------------------
def make_max_pool_spec() -> AttentionSpec:
    def psi(a, h):
        # Tropical lifting: stored entries become the multiplicative
        # identity so A ⊕ H computes per-feature neighbourhood maxima.
        s = a.with_data(adjacency_values(TROPICAL_MAX, a.data))
        return s, None

    return AttentionSpec(
        psi=psi, aggregate=TROPICAL_MAX, order="aggregate_first",
        name="max-pool",
    )


def main() -> None:
    data = synthetic_classification(n=600, feature_dim=16, seed=3)
    k, classes = 16, data.num_classes

    # --- trainable custom model ---------------------------------------
    layers = [
        GenericLayer(k, 32, make_scaled_dot_spec(np.sqrt(k)),
                     activation="relu", seed=0),
        GenericLayer(32, classes, make_scaled_dot_spec(np.sqrt(32)),
                     activation="identity", seed=1),
    ]
    model = GnnModel(layers)
    trainer = Trainer(model, SoftmaxCrossEntropyLoss(data.train_mask),
                      Adam(0.01))
    result = trainer.fit(data.adjacency, data.features, data.labels,
                         epochs=50)
    acc = trainer.evaluate(
        data.adjacency, data.features, data.labels, data.test_mask
    )
    print("scaled dot-product attention (custom, trainable):")
    print(f"  loss {result.losses[0]:.3f} -> {result.final_loss:.3f}, "
          f"test accuracy {acc:.3f}")
    assert acc > 0.75

    # --- semiring aggregation model (inference) ------------------------
    max_layer = GenericLayer(k, k, make_max_pool_spec(),
                             activation="identity", seed=2,
                             dtype=np.float64)
    out, _ = max_layer.forward(
        data.adjacency, data.features.astype(np.float64), training=False
    )
    print("\nmax-pooling attention (tropical semiring):")
    print(f"  output shape {out.shape}, "
          f"finite: {bool(np.all(np.isfinite(out)))}")
    # Sanity: aggregated features dominate each neighbourhood's values.
    dense = data.adjacency.to_dense()
    v = 5
    neighbours = np.nonzero(dense[v])[0]
    expected = data.features[neighbours].max(axis=0) @ max_layer.weight
    assert np.allclose(out[v], expected, atol=1e-6)
    print("  vertex-5 aggregation equals its neighbourhood feature maxima")


if __name__ == "__main__":
    main()
