#!/usr/bin/env python3
"""Distributed scaling study on the simulated cluster.

Trains GAT full-batch with the 1.5D A-stationary schedule (Section 6.3)
on 1, 4 and 16 simulated ranks, verifies that every rank count produces
the *same numbers* as the single-node model, and prints the per-rank
communication volume together with alpha-beta-gamma modeled time —
the quantities behind the paper's Figures 6-8.

Also runs the DistDGL-like local-formulation engine on the same
problem, showing the halo-exchange volume the global formulation
avoids.

Run:
    python examples/distributed_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.dist_local import dist_local_train
from repro.distributed.api import distributed_train
from repro.graphs import kronecker
from repro.graphs.prep import graph_stats, prepare_adjacency
from repro.models import build_model
from repro.runtime.costmodel import CostModel
from repro.training import SGD, SoftmaxCrossEntropyLoss, Trainer


def main() -> None:
    rng = np.random.default_rng(0)
    n, k, classes, layers, epochs, lr = 1024, 16, 4, 2, 3, 0.01

    adjacency = prepare_adjacency(kronecker(n, 16 * n, seed=1))
    stats = graph_stats(adjacency)
    features = rng.normal(0, 1, (n, k)).astype(np.float64)
    labels = rng.integers(0, classes, n)
    print(f"Kronecker graph: n={stats.n} m={stats.m} d_max={stats.max_degree}")

    # Single-node reference run.
    model = build_model("GAT", k, 32, classes, num_layers=layers, seed=0,
                        dtype=np.float64)
    trainer = Trainer(model, SoftmaxCrossEntropyLoss(), SGD(lr))
    reference = trainer.fit(adjacency, features, labels, epochs=epochs)
    print(f"\nsingle-node losses: {[round(x, 4) for x in reference.losses]}")

    cost = CostModel()
    print(f"\n{'p':>3} {'loss match':>11} {'comm words/rank':>16} "
          f"{'modeled time':>13}")
    for p in (1, 4, 16):
        result = distributed_train(
            "GAT", adjacency, features, labels, 32, classes,
            num_layers=layers, p=p, epochs=epochs, lr=lr, seed=0,
            dtype=np.float64, collect_output=False,
        )
        matches = np.allclose(result.losses, reference.losses, rtol=1e-8)
        print(
            f"{p:>3} {'yes' if matches else 'NO':>11} "
            f"{result.stats.max_words_sent:>16} "
            f"{cost.time(result.stats):>12.6f}s"
        )
        assert matches, "distributed training must be bit-faithful"

    # The local-formulation baseline on the same problem.
    print("\nDistDGL-like local formulation (halo exchange per layer):")
    for p in (4, 16):
        losses, local_stats = dist_local_train(
            "GAT", adjacency, features, labels, 32, classes,
            num_layers=layers, p=p, epochs=epochs, lr=lr, seed=0,
            dtype=np.float64,
        )
        halo_words = local_stats.phase_bytes().get("halo", 0) // 4
        print(
            f"  p={p:>2}: total/rank {local_stats.max_words_sent:>8} words "
            f"(halo {halo_words}), modeled {cost.time(local_stats):.6f}s"
        )


if __name__ == "__main__":
    main()
